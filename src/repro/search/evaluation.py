"""Recall / latency evaluation of graph-based ANN search."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..graph.bruteforce import brute_force_neighbors
from ..validation import check_data_matrix, check_positive_int
from .frontier import ServingStats

__all__ = ["SearchEvaluation", "evaluate_search"]


@dataclass(frozen=True)
class SearchEvaluation:
    """Summary of an ANN-search evaluation run.

    Attributes
    ----------
    recall_at_1, recall_at_k:
        Fraction of queries whose true nearest neighbour (resp. true top-k)
        was retrieved.
    k:
        Depth used for ``recall_at_k``.
    mean_query_seconds:
        Average wall-clock latency per query (total batch time divided by the
        number of queries in batch mode).
    mean_distance_evaluations:
        Average number of distance computations per query (a
        hardware-independent cost measure).  In batch mode each query is
        charged its share of the shared entry-point gemm (the full sample it
        was scored against) plus the neighbours scored for its own walk, so
        batched work is not under-counted and the numbers stay comparable
        with per-query search.
    per_query_evaluations:
        Per-query distance-evaluation counts, aligned with the query order.
    serving_stats:
        :class:`~repro.search.frontier.ServingStats` of the batched frontier
        search that served the queries — per-group rounds, gemm counts and
        wall time — or ``None`` when the run was per-query / per-query
        strategy and no frontier walk happened.
    """

    recall_at_1: float
    recall_at_k: float
    k: int
    mean_query_seconds: float
    mean_distance_evaluations: float
    per_query_evaluations: tuple = ()
    serving_stats: ServingStats | None = None


def evaluate_search(searcher, queries: np.ndarray, *, n_results: int = 10,
                    pool_size: int | None = None, batch: bool | None = None,
                    workers: int | None = None,
                    shard_workers: int | None = None,
                    shard_probe: int | None = None,
                    executor: str | None = None) -> SearchEvaluation:
    """Evaluate a searcher against exact brute-force results.

    Parameters
    ----------
    searcher:
        A :class:`~repro.search.greedy.GraphSearcher`, an
        :class:`~repro.index.Index` or a
        :class:`~repro.index.ShardedIndex`.
    queries:
        ``(m, d)`` held-out query matrix.
    n_results:
        Evaluation depth k.
    pool_size:
        Candidate-pool override forwarded to the searcher.
    batch:
        ``True`` serves the whole query set in one batched call (frontier
        merged for an ``Index``; per-query latency is then the batch time
        divided by ``m``); ``False`` issues one call per query.  Defaults to
        batch mode for an ``Index`` and per-query mode for a
        ``GraphSearcher``.
    workers:
        Worker-thread override for the batched frontier walk (forwarded to
        the searcher; results are identical for every worker count).
        Ignored in per-query mode.
    shard_workers:
        Shard fan-out threads for a :class:`~repro.index.ShardedIndex`
        (likewise a pure throughput knob).  Only valid for sharded
        searchers; ignored when ``None``.
    shard_probe:
        Routed fan-out for a :class:`~repro.index.ShardedIndex` — each
        query is served by its ``shard_probe`` nearest shards only.  Unlike
        the knobs above this trades recall for throughput (the evaluation
        reports exactly that frontier); ignored when ``None``.
    executor:
        Shard fan-out executor for a batched index search (``"thread"`` or
        ``"process"``; a pure throughput knob like the worker counts).
        Only valid for batched index searches; ignored when ``None``.

    The brute-force oracle is computed under the searcher's own metric, so
    cosine / inner-product searchers are scored against the right ground
    truth.
    """
    queries = check_data_matrix(queries, name="queries")
    n_results = check_positive_int(n_results, name="n_results")

    is_index = hasattr(searcher, "search")
    if not is_index and not hasattr(searcher, "query"):
        raise ValidationError(
            f"searcher must be a GraphSearcher or an Index, got "
            f"{type(searcher).__name__}")
    if batch is None:
        batch = is_index
    if (not batch or not is_index) and \
            (shard_workers is not None or shard_probe is not None or
             executor is not None):
        # Silently dropping these would report a plain evaluation the
        # caller believes is sharded/routed/out-of-process.
        raise ValidationError(
            "shard_workers/shard_probe/executor only apply to batched "
            "searches of a (sharded) index; remove them or use batch=True "
            "with an Index/ShardedIndex searcher")

    engine = getattr(searcher, "engine_", None)
    if is_index:
        # Indexes search in external-id terms and never return tombstoned
        # rows, so the oracle must cover exactly the live vectors and its
        # positions must be mapped to external ids.  For an unmutated
        # index ids == positions and this is a no-op.
        corpus, corpus_ids = searcher.evaluation_corpus
    else:
        corpus, corpus_ids = searcher.data, None
    exact_idx, _ = brute_force_neighbors(queries, corpus, n_results,
                                         engine=engine)
    if corpus_ids is not None:
        exact_idx = np.where(exact_idx >= 0,
                             corpus_ids[np.maximum(exact_idx, 0)], -1)

    m = queries.shape[0]
    serving_stats = None
    if batch:
        started = time.perf_counter()
        if is_index:
            fan_out = {}
            if shard_workers is not None:
                fan_out["shard_workers"] = shard_workers
            if shard_probe is not None:
                fan_out["shard_probe"] = shard_probe
            if executor is not None:
                fan_out["executor"] = executor
            approx, _ = searcher.search(queries, n_results,
                                        pool_size=pool_size, workers=workers,
                                        **fan_out)
        else:
            approx, _ = searcher.batch_query(queries, n_results,
                                             pool_size=pool_size,
                                             workers=workers)
        total_seconds = time.perf_counter() - started
        per_query = np.asarray(searcher.last_per_query_evaluations)
        serving_stats = getattr(searcher, "last_serving_stats", None)
        approx_rows = [approx[row] for row in range(m)]
    else:
        approx_rows = []
        per_query = np.empty(m, dtype=np.int64)
        total_seconds = 0.0
        for row in range(m):
            started = time.perf_counter()
            if is_index:
                approx_idx, _ = searcher.search(queries[row], n_results,
                                                pool_size=pool_size)
            else:
                approx_idx, _ = searcher.query(queries[row], n_results,
                                               pool_size=pool_size)
            total_seconds += time.perf_counter() - started
            per_query[row] = searcher.last_n_evaluations
            approx_rows.append(approx_idx)

    hits_at_1 = 0.0
    hits_at_k = 0.0
    for row in range(m):
        truth = set(int(i) for i in exact_idx[row])
        approx_ids = set(int(i) for i in approx_rows[row] if i >= 0)
        if int(exact_idx[row, 0]) in approx_ids:
            hits_at_1 += 1.0
        hits_at_k += len(truth & approx_ids) / max(len(truth), 1)

    return SearchEvaluation(
        recall_at_1=hits_at_1 / m,
        recall_at_k=hits_at_k / m,
        k=n_results,
        mean_query_seconds=total_seconds / m,
        mean_distance_evaluations=float(per_query.mean()),
        per_query_evaluations=tuple(int(v) for v in per_query),
        serving_stats=serving_stats)
