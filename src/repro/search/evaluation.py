"""Recall / latency evaluation of graph-based ANN search."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..graph.bruteforce import brute_force_neighbors
from ..validation import check_data_matrix, check_positive_int
from .greedy import GraphSearcher

__all__ = ["SearchEvaluation", "evaluate_search"]


@dataclass(frozen=True)
class SearchEvaluation:
    """Summary of an ANN-search evaluation run.

    Attributes
    ----------
    recall_at_1, recall_at_k:
        Fraction of queries whose true nearest neighbour (resp. true top-k)
        was retrieved.
    k:
        Depth used for ``recall_at_k``.
    mean_query_seconds:
        Average wall-clock latency per query.
    mean_distance_evaluations:
        Average number of distance computations per query (a
        hardware-independent cost measure).
    """

    recall_at_1: float
    recall_at_k: float
    k: int
    mean_query_seconds: float
    mean_distance_evaluations: float


def evaluate_search(searcher: GraphSearcher, queries: np.ndarray, *,
                    n_results: int = 10, pool_size: int | None = None
                    ) -> SearchEvaluation:
    """Evaluate a :class:`GraphSearcher` against exact brute-force results.

    The brute-force oracle is computed under the searcher's own metric, so
    cosine / inner-product searchers are scored against the right ground
    truth.
    """
    queries = check_data_matrix(queries, name="queries")
    n_results = check_positive_int(n_results, name="n_results")

    engine = getattr(searcher, "engine_", None)
    exact_idx, _ = brute_force_neighbors(queries, searcher.data, n_results,
                                         engine=engine)

    hits_at_1 = 0.0
    hits_at_k = 0.0
    total_seconds = 0.0
    total_evaluations = 0.0
    for row in range(queries.shape[0]):
        started = time.perf_counter()
        approx_idx, _ = searcher.query(queries[row], n_results,
                                       pool_size=pool_size)
        total_seconds += time.perf_counter() - started
        total_evaluations += searcher.last_n_evaluations
        truth = set(int(i) for i in exact_idx[row])
        approx = set(int(i) for i in approx_idx if i >= 0)
        if int(exact_idx[row, 0]) in approx:
            hits_at_1 += 1.0
        hits_at_k += len(truth & approx) / max(len(truth), 1)

    m = queries.shape[0]
    return SearchEvaluation(
        recall_at_1=hits_at_1 / m,
        recall_at_k=hits_at_k / m,
        k=n_results,
        mean_query_seconds=total_seconds / m,
        mean_distance_evaluations=total_evaluations / m)
