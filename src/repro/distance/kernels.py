"""Blocked squared-Euclidean distance kernels.

The k-means family and the k-NN graph construction all reduce to two
primitives:

* ``cross_squared_euclidean(A, B)`` — the ``(len(A), len(B))`` matrix of
  squared l2 distances, computed via the expansion
  ``||a - b||^2 = ||a||^2 - 2 a·b + ||b||^2`` so the inner loop is a single
  BLAS ``gemm``.
* ``assign_to_nearest(X, C)`` — the nearest centroid (index and distance) for
  every sample, computed in row blocks so the full distance matrix is never
  materialised for large ``n``/``k``.

Negative distances that appear from floating point cancellation are clipped to
zero so downstream square roots and distortion sums stay well defined.
"""

from __future__ import annotations

import numpy as np

from .norms import squared_norms

__all__ = [
    "squared_euclidean",
    "pairwise_squared_euclidean",
    "cross_squared_euclidean",
    "assign_to_nearest",
    "nearest_among",
    "pairwise_within_block",
]

#: Default number of rows processed per block in the chunked kernels.  The
#: value keeps the temporary distance block under ~64 MB for k up to ~8k.
DEFAULT_BLOCK_SIZE = 1024


def squared_euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """Squared l2 distance between two single vectors."""
    diff = np.asarray(x, dtype=np.float64) - np.asarray(y, dtype=np.float64)
    return float(np.dot(diff, diff))


def cross_squared_euclidean(a: np.ndarray, b: np.ndarray,
                            a_norms: np.ndarray | None = None,
                            b_norms: np.ndarray | None = None) -> np.ndarray:
    """Squared distances between every row of ``a`` and every row of ``b``.

    Parameters
    ----------
    a, b:
        Arrays of shape ``(m, d)`` and ``(n, d)``.
    a_norms, b_norms:
        Optional precomputed squared row norms, avoiding recomputation inside
        tight loops (e.g. repeated centroid assignment).

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(m, n)``; entries are clipped to be non-negative.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a_norms is None:
        a_norms = squared_norms(a)
    if b_norms is None:
        b_norms = squared_norms(b)
    distances = a_norms[:, None] - 2.0 * (a @ b.T) + b_norms[None, :]
    np.maximum(distances, 0.0, out=distances)
    return distances


def pairwise_squared_euclidean(data: np.ndarray) -> np.ndarray:
    """Full symmetric pairwise squared-distance matrix of a dataset.

    Only intended for small blocks (e.g. within-cluster exhaustive comparison
    in Alg. 3 where the block size is the constant ξ).
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    norms = squared_norms(data)
    distances = cross_squared_euclidean(data, data, norms, norms)
    np.fill_diagonal(distances, 0.0)
    return distances


def pairwise_within_block(data: np.ndarray, members: np.ndarray) -> np.ndarray:
    """Pairwise squared distances restricted to the rows listed in ``members``."""
    members = np.asarray(members, dtype=np.int64)
    return pairwise_squared_euclidean(data[members])


def assign_to_nearest(data: np.ndarray, centroids: np.ndarray, *,
                      data_norms: np.ndarray | None = None,
                      centroid_norms: np.ndarray | None = None,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      counter: "DistanceCounter | None" = None,
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Assign every sample to its nearest centroid.

    Parameters
    ----------
    data:
        Sample matrix of shape ``(n, d)``.
    centroids:
        Centroid matrix of shape ``(k, d)``.
    data_norms, centroid_norms:
        Optional precomputed squared norms.
    block_size:
        Number of samples processed per block.
    counter:
        Optional :class:`DistanceCounter` accumulating the number of
        sample-to-centroid distance evaluations (used by the scalability
        experiments to report algorithmic work independent of Python overhead).

    Returns
    -------
    (labels, distances):
        ``labels`` is ``(n,)`` int64 with the index of the nearest centroid and
        ``distances`` the corresponding squared distance.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    centroids = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
    n = data.shape[0]
    if data_norms is None:
        data_norms = squared_norms(data)
    if centroid_norms is None:
        centroid_norms = squared_norms(centroids)

    labels = np.empty(n, dtype=np.int64)
    best = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = cross_squared_euclidean(
            data[start:stop], centroids,
            data_norms[start:stop], centroid_norms)
        labels[start:stop] = np.argmin(block, axis=1)
        best[start:stop] = block[np.arange(stop - start), labels[start:stop]]
    if counter is not None:
        counter.add(n * centroids.shape[0])
    return labels, best


def nearest_among(data: np.ndarray, sample_index: int,
                  candidate_centroids: np.ndarray,
                  candidate_ids: np.ndarray) -> tuple[int, float]:
    """Nearest centroid of a single sample among an explicit candidate subset.

    This is the pruned assignment used by GK-means⁻ (the traditional-k-means
    flavour of Alg. 2): the sample is only compared against the centroids of
    clusters where its graph neighbours live.
    """
    sample = data[sample_index]
    distances = cross_squared_euclidean(sample[None, :], candidate_centroids)[0]
    best = int(np.argmin(distances))
    return int(candidate_ids[best]), float(distances[best])


class DistanceCounter:
    """Accumulates the number of distance evaluations performed.

    The paper reports speed-ups that come from *fewer sample-to-centroid
    comparisons*; counting them gives a hardware-independent view of the same
    effect, which the scalability benchmarks report alongside wall-clock time.
    """

    def __init__(self) -> None:
        self.count = 0

    def add(self, amount: int) -> None:
        """Record ``amount`` additional distance evaluations."""
        self.count += int(amount)

    def reset(self) -> None:
        """Zero the counter (e.g. between benchmark iterations)."""
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistanceCounter(count={self.count})"
