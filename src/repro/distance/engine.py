"""Pluggable metric/dtype distance engine.

Every hot loop in this library — centroid assignment in the k-means family,
the local joins of NN-Descent, the within-cluster refinement of Alg. 3 and
greedy graph search — reduces to "turn one BLAS ``gemm`` block into a distance
block".  :class:`DistanceEngine` centralises that reduction for three metrics
and two floating dtypes so the whole stack can run on cosine / inner-product
workloads (text embeddings, visual vocabularies, MIPS) and in float32 (half
the memory traffic of float64 in the assignment kernel):

============  =============================  ==============================
metric        distance                       notes
============  =============================  ==============================
sqeuclidean   ``||a - b||^2``                the paper's setting
cosine        ``1 - a.b / (|a| |b|)``        range [0, 2]; zero vectors are
                                             treated as orthogonal to
                                             everything (distance 1)
dot           ``-a.b``                       MIPS as a "distance" (may be
                                             negative; ordering only)
============  =============================  ==============================

Two properties matter for how the rest of the library consumes the engine:

* ``sqeuclidean`` and ``cosine`` reduce to squared-Euclidean *geometry*:
  after :meth:`prepare_clustering` (row normalisation for cosine) the k-means
  objective, the boost ΔI moves, the two-means tree and the Elkan/Hamerly
  triangle-inequality bounds are all valid in the transformed space.  On the
  unit sphere ``||a - b||^2 = 2 (1 - cos(a, b))``, so squared-Euclidean
  distances of normalised data are exactly ``2x`` the cosine distance.
* ``dot`` has no such reduction — it is supported wherever only the *ordering*
  of distances matters (graphs, search, nearest-candidate assignment) and
  rejected by algorithms whose correctness needs the l2 geometry.

Norms are computed once per dataset and threaded through the blocked kernels,
so every block costs exactly one ``gemm`` plus O(block) epilogue work.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["DistanceEngine", "METRICS", "resolve_metric", "resolve_dtype"]

#: Canonical metric names.
METRICS = ("sqeuclidean", "cosine", "dot")

#: Accepted spellings → canonical metric name.
_METRIC_ALIASES = {
    "sqeuclidean": "sqeuclidean",
    "squared-euclidean": "sqeuclidean",
    "squared_euclidean": "sqeuclidean",
    "euclidean": "sqeuclidean",
    "l2": "sqeuclidean",
    "cosine": "cosine",
    "cos": "cosine",
    "angular": "cosine",
    "dot": "dot",
    "ip": "dot",
    "inner-product": "dot",
    "inner_product": "dot",
    "mips": "dot",
}

#: Default number of rows processed per block in the chunked kernels (kept in
#: sync with :mod:`repro.distance.kernels`).
DEFAULT_BLOCK_SIZE = 1024


def resolve_metric(metric) -> str:
    """Normalise a metric spelling to one of :data:`METRICS`."""
    key = str(metric).lower().strip()
    if key not in _METRIC_ALIASES:
        raise ValidationError(
            f"unknown metric {metric!r}; expected one of {sorted(METRICS)} "
            f"(aliases: l2, euclidean, cos, angular, ip, inner-product, mips)")
    return _METRIC_ALIASES[key]


def resolve_dtype(dtype) -> np.dtype:
    """Normalise a dtype spec to ``float32`` or ``float64``."""
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValidationError(f"invalid dtype {dtype!r}") from exc
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValidationError(
            f"dtype must be float32 or float64, got {dtype!r}")
    return resolved


class DistanceEngine:
    """Blocked distance kernels for one (metric, dtype) combination.

    Parameters
    ----------
    metric:
        ``"sqeuclidean"`` (default), ``"cosine"`` or ``"dot"`` — any alias
        accepted by :func:`resolve_metric`.
    dtype:
        ``float64`` (default) or ``float32``.  All kernels compute (and
        return) in this dtype; float32 halves the memory traffic of the
        ``gemm``-bound kernels.
    """

    def __init__(self, metric="sqeuclidean", dtype=np.float64) -> None:
        self.metric = resolve_metric(metric)
        self.dtype = resolve_dtype(dtype)

    # ------------------------------------------------------------------ #
    # Capabilities
    # ------------------------------------------------------------------ #
    @property
    def kmeans_geometry(self) -> bool:
        """Whether the metric reduces to squared-Euclidean geometry.

        True for ``sqeuclidean`` and ``cosine`` (after row normalisation);
        algorithms relying on the k-means objective or triangle-inequality
        bounds must reject engines where this is false.
        """
        return self.metric in ("sqeuclidean", "cosine")

    def clustering_engine(self) -> "DistanceEngine":
        """Engine for the transformed space of :meth:`prepare_clustering`.

        Cosine work happens in squared-Euclidean geometry on normalised rows,
        so the inner engine is a ``sqeuclidean`` engine of the same dtype; the
        other metrics work in their own space.
        """
        if self.metric == "cosine":
            return DistanceEngine("sqeuclidean", self.dtype)
        return self

    # ------------------------------------------------------------------ #
    # Data preparation
    # ------------------------------------------------------------------ #
    def prepare(self, data) -> np.ndarray:
        """Cast to a C-contiguous 2-D array of the engine dtype (no copy if
        already in that form)."""
        array = np.ascontiguousarray(data, dtype=self.dtype)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        return array

    def prepare_clustering(self, data) -> np.ndarray:
        """Transform ``data`` so squared-Euclidean machinery applies.

        Identity for ``sqeuclidean`` and ``dot``; l2 row normalisation for
        ``cosine`` (zero rows stay zero).  Use together with
        :meth:`clustering_engine`.

        Caveat: a zero row cannot be placed on the unit sphere, so in the
        transformed space it sits at the origin — squared distance 1 to every
        unit vector, i.e. effective cosine distance 0.5 instead of the direct
        kernels' convention of 1.  Zero vectors are degenerate under cosine
        anyway; filter them out upstream if the distinction matters.
        """
        data = self.prepare(data)
        if self.metric == "cosine":
            data = data / self.norms(data)[:, None]
        return data

    def norms(self, data) -> np.ndarray | None:
        """Per-row auxiliary norms the metric needs (``None`` for ``dot``).

        ``sqeuclidean`` → squared l2 norms; ``cosine`` → l2 norms with zeros
        replaced by 1 (the zero-vector convention above).  Compute this once
        per dataset and pass it to the kernels — that is the "cached norms"
        contract used throughout the library.
        """
        if self.metric == "dot":
            return None
        data = self.prepare(data)
        squared = np.einsum("ij,ij->i", data, data)
        if self.metric == "sqeuclidean":
            return squared
        lengths = np.sqrt(squared)
        lengths[lengths == 0] = 1.0
        return lengths

    # ------------------------------------------------------------------ #
    # Kernels
    # ------------------------------------------------------------------ #
    def from_inner(self, inner: np.ndarray, a_norms=None,
                   b_norms=None) -> np.ndarray:
        """Turn an inner-product block ``A @ B.T`` into metric distances.

        ``inner`` is modified in place (it is assumed to be a freshly computed
        gemm result).  ``a_norms`` may be 1-D ``(m,)``; ``b_norms`` may be 1-D
        ``(n,)`` or 2-D ``(m, n)`` (the gathered-candidates layout used by
        GK-means⁻).  Both are ignored for ``dot``.
        """
        if self.metric == "dot":
            return np.negative(inner, out=inner)
        if a_norms is None or b_norms is None:
            raise ValidationError(
                f"metric {self.metric!r} requires row norms; "
                "compute them with DistanceEngine.norms()")
        a_norms = np.asarray(a_norms)
        b_norms = np.asarray(b_norms)
        a_col = a_norms[:, None] if a_norms.ndim == 1 else a_norms
        b_row = b_norms[None, :] if b_norms.ndim == 1 else b_norms
        if self.metric == "sqeuclidean":
            inner *= -2.0
            inner += a_col
            inner += b_row
            np.maximum(inner, 0.0, out=inner)
            return inner
        # cosine: 1 - inner / (|a| |b|), without materialising the norm outer
        # product.
        inner /= a_col
        inner /= b_row
        np.subtract(1.0, inner, out=inner)
        np.clip(inner, 0.0, 2.0, out=inner)
        return inner

    def cross(self, a, b, a_norms=None, b_norms=None) -> np.ndarray:
        """``(m, n)`` matrix of distances between rows of ``a`` and ``b``.

        One gemm; norms are computed on the fly when not supplied.
        """
        a = self.prepare(a)
        b = self.prepare(b)
        if self.metric != "dot":
            if a_norms is None:
                a_norms = self.norms(a)
            if b_norms is None:
                b_norms = self.norms(b)
        return self.from_inner(a @ b.T, a_norms, b_norms)

    def pairwise(self, data, norms=None) -> np.ndarray:
        """Full symmetric pairwise distance matrix.

        For ``sqeuclidean``/``cosine`` the diagonal is forced to the exact
        self-distance 0; for ``dot`` the diagonal keeps ``-||x||^2`` (the true
        self "distance").
        """
        data = self.prepare(data)
        if norms is None:
            norms = self.norms(data)
        distances = self.from_inner(data @ data.T, norms, norms)
        if self.metric != "dot":
            np.fill_diagonal(distances, 0.0)
        return distances

    def rowwise(self, a, b) -> np.ndarray:
        """Distance between aligned rows of ``a`` and ``b`` (no gemm).

        Used for "distance of every sample to its assigned centroid" style
        reductions.  The squared-Euclidean path uses the difference form,
        which is more accurate than the gemm expansion.
        """
        a = self.prepare(a)
        b = self.prepare(b)
        if self.metric == "sqeuclidean":
            diff = a - b
            return np.einsum("ij,ij->i", diff, diff)
        inner = np.einsum("ij,ij->i", a, b)
        if self.metric == "dot":
            return -inner
        distances = 1.0 - inner / (self.norms(a) * self.norms(b))
        return np.clip(distances, 0.0, 2.0)

    def pair(self, x, y) -> float:
        """Scalar distance between two single vectors."""
        return float(self.rowwise(x, y)[0])

    def assign_to_nearest(self, data, points, *, data_norms=None,
                          point_norms=None,
                          block_size: int = DEFAULT_BLOCK_SIZE,
                          counter=None) -> tuple[np.ndarray, np.ndarray]:
        """Nearest row of ``points`` for every row of ``data``, blocked.

        Returns ``(labels, distances)`` with ``labels`` int64 and
        ``distances`` float64 (distortion accumulation stays in double
        precision regardless of the kernel dtype).  ``counter`` is a
        :class:`~repro.distance.kernels.DistanceCounter` accumulating
        ``n * len(points)`` evaluations.
        """
        data = self.prepare(data)
        points = self.prepare(points)
        if self.metric != "dot":
            if data_norms is None:
                data_norms = self.norms(data)
            if point_norms is None:
                point_norms = self.norms(points)
        n = data.shape[0]
        block_size = max(1, int(block_size))
        labels = np.empty(n, dtype=np.int64)
        best = np.empty(n, dtype=np.float64)
        for start in range(0, n, block_size):
            stop = min(start + block_size, n)
            inner = data[start:stop] @ points.T
            block = self.from_inner(
                inner,
                None if data_norms is None else data_norms[start:stop],
                point_norms)
            rows = np.arange(stop - start)
            labels[start:stop] = np.argmin(block, axis=1)
            best[start:stop] = block[rows, labels[start:stop]]
        if counter is not None:
            counter.add(n * points.shape[0])
        return labels, best

    def __repr__(self) -> str:
        return (f"DistanceEngine(metric={self.metric!r}, "
                f"dtype={np.dtype(self.dtype).name!r})")
