"""Vector-norm helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["squared_norms", "normalize_rows"]


def squared_norms(data: np.ndarray) -> np.ndarray:
    """Return the squared l2 norm of every row of ``data``.

    Parameters
    ----------
    data:
        Array of shape ``(n, d)``.

    Returns
    -------
    numpy.ndarray
        Vector of shape ``(n,)`` with ``||x_i||^2`` entries.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 1:
        return np.array([float(np.dot(data, data))])
    return np.einsum("ij,ij->i", data, data)


def normalize_rows(data: np.ndarray, *, copy: bool = True) -> np.ndarray:
    """l2-normalise every row of ``data``; zero rows are left untouched.

    Used when generating GloVe-like embeddings (cosine ≈ Euclidean on the unit
    sphere) and by the ANNS evaluation helpers.
    """
    data = np.array(data, dtype=np.float64, copy=copy)
    norms = np.sqrt(squared_norms(data))
    nonzero = norms > 0
    data[nonzero] /= norms[nonzero, None]
    return data
