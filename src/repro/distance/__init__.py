"""Distance kernels used throughout the library.

Everything in the paper operates in Euclidean (l2) space; the kernels here
implement squared-Euclidean distance computations in blocked, memory-bounded
form so that million-scale matrices never have to be materialised at once.
"""

from .kernels import (
    DistanceCounter,
    squared_euclidean,
    pairwise_squared_euclidean,
    cross_squared_euclidean,
    assign_to_nearest,
    nearest_among,
    pairwise_within_block,
)
from .norms import squared_norms, normalize_rows

__all__ = [
    "DistanceCounter",
    "squared_euclidean",
    "pairwise_squared_euclidean",
    "cross_squared_euclidean",
    "assign_to_nearest",
    "nearest_among",
    "pairwise_within_block",
    "squared_norms",
    "normalize_rows",
]
