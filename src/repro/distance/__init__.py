"""Distance kernels used throughout the library.

Two layers live here:

* :mod:`repro.distance.kernels` — the original blocked squared-Euclidean
  float64 kernels (the paper's setting), kept as simple module functions.
* :mod:`repro.distance.engine` — :class:`DistanceEngine`, the pluggable
  metric/dtype generalisation (squared-Euclidean, cosine, inner-product ×
  float32/float64) that the clustering, graph and search layers are threaded
  through.  Its ``sqeuclidean``/``float64`` configuration is numerically
  identical to the legacy kernels.

A third, optional layer — :mod:`repro.distance.quantized` — compresses a
dataset into ``float16`` or ``int8`` codes (:class:`ScalarQuantizer`) and
scores candidates in the compressed domain (:class:`QuantizedScorer`); the
serving stack re-ranks every returned candidate pool with the exact engine,
so quantization trades recall, never distance correctness.

All hot paths are blocked and memory-bounded so million-scale matrices never
have to be materialised at once, and every block costs a single BLAS gemm.
"""

from .engine import DistanceEngine, METRICS, resolve_dtype, resolve_metric
from .kernels import (
    DistanceCounter,
    squared_euclidean,
    pairwise_squared_euclidean,
    cross_squared_euclidean,
    assign_to_nearest,
    nearest_among,
    pairwise_within_block,
)
from .norms import squared_norms, normalize_rows
from .quantized import (
    QUANTIZE_MODES,
    QuantizedScorer,
    ScalarQuantizer,
    resolve_quantize,
)

__all__ = [
    "DistanceEngine",
    "METRICS",
    "QUANTIZE_MODES",
    "QuantizedScorer",
    "ScalarQuantizer",
    "resolve_metric",
    "resolve_dtype",
    "resolve_quantize",
    "DistanceCounter",
    "squared_euclidean",
    "pairwise_squared_euclidean",
    "cross_squared_euclidean",
    "assign_to_nearest",
    "nearest_among",
    "pairwise_within_block",
    "squared_norms",
    "normalize_rows",
]
