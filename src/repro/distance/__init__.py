"""Distance kernels used throughout the library.

Two layers live here:

* :mod:`repro.distance.kernels` — the original blocked squared-Euclidean
  float64 kernels (the paper's setting), kept as simple module functions.
* :mod:`repro.distance.engine` — :class:`DistanceEngine`, the pluggable
  metric/dtype generalisation (squared-Euclidean, cosine, inner-product ×
  float32/float64) that the clustering, graph and search layers are threaded
  through.  Its ``sqeuclidean``/``float64`` configuration is numerically
  identical to the legacy kernels.

All hot paths are blocked and memory-bounded so million-scale matrices never
have to be materialised at once, and every block costs a single BLAS gemm.
"""

from .engine import DistanceEngine, METRICS, resolve_dtype, resolve_metric
from .kernels import (
    DistanceCounter,
    squared_euclidean,
    pairwise_squared_euclidean,
    cross_squared_euclidean,
    assign_to_nearest,
    nearest_among,
    pairwise_within_block,
)
from .norms import squared_norms, normalize_rows

__all__ = [
    "DistanceEngine",
    "METRICS",
    "resolve_metric",
    "resolve_dtype",
    "DistanceCounter",
    "squared_euclidean",
    "pairwise_squared_euclidean",
    "cross_squared_euclidean",
    "assign_to_nearest",
    "nearest_among",
    "pairwise_within_block",
    "squared_norms",
    "normalize_rows",
]
