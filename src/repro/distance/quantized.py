"""Scalar-quantized distance kernels with an exact-re-rank contract.

The frontier walk's gemms stream the whole candidate neighbourhood through
memory every round, so the walk is bandwidth-bound long before it is
flop-bound.  Scalar quantization attacks exactly that: the dataset is stored
once in a compressed code matrix — ``float16`` (a plain cast, 2 bytes/dim)
or ``int8`` (a per-dimension affine transform, 1 byte/dim) — and the walk
scores candidates *in the compressed domain*.  Because every supported
metric reduces to an inner product plus per-row norms
(:meth:`~repro.distance.engine.DistanceEngine.from_inner`), one identity
makes the int8 gemm exact for the *decoded* vectors::

    x_hat = offset + scale * code            (per-dimension affine)
    q . x_hat = q . offset + (q * scale) . code

so a query is folded into the code domain once (``q * scale`` and the
scalar ``q . offset``) and each candidate block costs a single small-operand
gemm.  The approximation error therefore lives entirely in the encoding
``x -> x_hat``, never in the arithmetic.

The recall contract is restored by **exact re-rank**: the walk's final
candidate pool is re-scored with the uncompressed
:class:`~repro.distance.DistanceEngine` (one exact gemm over the merged
pool), so returned distances are exact-metric values and the only effect of
quantization on results is *which* candidates survived the walk.  The
test-pinned floor — quantized recall@10 at or above 0.95x the exact oracle —
lives in ``tests/test_quantized.py``; the speed side of the trade is
recorded by ``benchmarks/test_quantized_throughput.py``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["QUANTIZE_MODES", "resolve_quantize", "ScalarQuantizer",
           "QuantizedScorer"]

#: Canonical quantization modes: ``"none"`` (exact kernels only),
#: ``"float16"`` (half-precision cast) and ``"int8"`` (per-dimension affine).
QUANTIZE_MODES = ("none", "float16", "int8")

#: Accepted spellings -> canonical mode name.
_QUANTIZE_ALIASES = {
    "none": "none",
    "off": "none",
    "float16": "float16",
    "fp16": "float16",
    "half": "float16",
    "int8": "int8",
    "i8": "int8",
}


def resolve_quantize(quantize) -> str:
    """Normalise a quantization spelling to one of :data:`QUANTIZE_MODES`."""
    key = str(quantize).lower().strip()
    if key not in _QUANTIZE_ALIASES:
        raise ValidationError(
            f"unknown quantize mode {quantize!r}; expected one of "
            f"{list(QUANTIZE_MODES)} (aliases: off, fp16, half, i8)")
    return _QUANTIZE_ALIASES[key]


class ScalarQuantizer:
    """Per-dimension scalar quantizer for one dataset.

    ``float16`` carries no parameters (the code *is* the half-precision
    cast).  ``int8`` fits a per-dimension affine map at build time —
    ``offset`` is the midpoint of the observed range, ``scale`` spans it
    over the symmetric code book ``[-127, 127]`` — and those parameters are
    **fixed for the lifetime of the index**: online inserts are encoded
    with the build-time fit (and persisted with it), so a saved-then-loaded
    index re-encodes to bit-identical codes and serves bit-identical
    results.  Dimensions with zero observed span get ``scale=1`` (every
    code is 0 and decodes to the constant ``offset``, which is exact).

    Parameters
    ----------
    mode:
        ``"float16"`` or ``"int8"`` (any alias accepted by
        :func:`resolve_quantize`; ``"none"`` is rejected — an exact engine
        needs no quantizer).
    scale, offset:
        Restored per-dimension ``int8`` parameters (from a saved index).
        Fitted from the data when omitted.
    """

    def __init__(self, mode: str, *, scale: np.ndarray | None = None,
                 offset: np.ndarray | None = None) -> None:
        self.mode = resolve_quantize(mode)
        if self.mode == "none":
            raise ValidationError(
                "ScalarQuantizer is for the compressed modes; "
                "quantize='none' uses the exact engine directly")
        self.scale: np.ndarray | None = None
        self.offset: np.ndarray | None = None
        if scale is not None or offset is not None:
            if self.mode != "int8":
                raise ValidationError(
                    "scale/offset parameters apply to int8 quantization "
                    f"only, not {self.mode!r}")
            if scale is None or offset is None:
                raise ValidationError(
                    "int8 quantizer parameters must supply both scale "
                    "and offset")
            self.scale = np.asarray(scale, dtype=np.float32).ravel()
            self.offset = np.asarray(offset, dtype=np.float32).ravel()
            if self.scale.shape != self.offset.shape:
                raise ValidationError(
                    f"scale shape {self.scale.shape} does not match offset "
                    f"shape {self.offset.shape}")
            if not np.all(np.isfinite(self.scale)) or \
                    not np.all(np.isfinite(self.offset)):
                raise ValidationError(
                    "quantizer parameters contain NaN or infinite values")
            if np.any(self.scale <= 0):
                raise ValidationError("quantizer scale must be positive")

    @property
    def fitted(self) -> bool:
        """Whether the quantizer is ready to encode (int8 needs a fit)."""
        return self.mode == "float16" or self.scale is not None

    def fit(self, data: np.ndarray) -> "ScalarQuantizer":
        """Fit the per-dimension parameters from ``data`` (int8 only).

        A no-op for ``float16``.  Returns ``self`` for chaining.
        """
        if self.mode == "float16":
            return self
        data = np.asarray(data, dtype=np.float32)
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        span = hi - lo
        scale = span / 254.0
        scale[span <= 0] = 1.0
        self.scale = np.ascontiguousarray(scale, dtype=np.float32)
        self.offset = np.ascontiguousarray((lo + hi) / 2.0,
                                           dtype=np.float32)
        return self

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Compress rows into the code matrix the scorer gemms against."""
        if self.mode == "float16":
            return np.ascontiguousarray(data, dtype=np.float16)
        if not self.fitted:
            raise ValidationError(
                "int8 quantizer must be fitted (or restored) before "
                "encoding")
        data = np.asarray(data, dtype=np.float32)
        codes = np.rint((data - self.offset[None, :])
                        / self.scale[None, :])
        return np.clip(codes, -127, 127).astype(np.int8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float32 approximations of encoded rows."""
        if self.mode == "float16":
            return np.asarray(codes, dtype=np.float32)
        if not self.fitted:
            raise ValidationError("int8 quantizer must be fitted before "
                                  "decoding")
        return (self.offset[None, :]
                + self.scale[None, :] * codes.astype(np.float32))

    def __repr__(self) -> str:
        state = "fitted" if self.fitted else "unfitted"
        return f"ScalarQuantizer(mode={self.mode!r}, {state})"


class QuantizedScorer:
    """Compressed-domain distance scoring bound to one encoded dataset.

    Owns the code matrix and the *decoded-row* norms (the norms the metric
    epilogue needs are those of the vectors the inner products are exact
    for — the decoded approximations, not the originals), and turns each
    candidate block into distances with one small-operand gemm.  Distances
    approximate the exact metric through the encoding error only; the
    exact re-rank of :func:`~repro.search.quantized.quantized_batch_search`
    removes even that from the returned values.

    Parameters
    ----------
    engine:
        The exact :class:`~repro.distance.DistanceEngine` whose metric the
        approximate scores must order like.
    quantizer:
        A fitted :class:`ScalarQuantizer`.
    data:
        ``(n, d)`` dataset to encode.
    """

    def __init__(self, engine, quantizer: ScalarQuantizer,
                 data: np.ndarray) -> None:
        if not quantizer.fitted:
            quantizer.fit(data)
        self.engine = engine
        self.quantizer = quantizer
        self.codes = quantizer.encode(data)
        if engine.metric == "dot":
            self._norms = None
        else:
            decoded = quantizer.decode(self.codes)
            squared = np.einsum("ij,ij->i", decoded, decoded,
                                dtype=np.float32)
            if engine.metric == "sqeuclidean":
                self._norms = squared
            else:
                lengths = np.sqrt(squared)
                lengths[lengths == 0] = 1.0
                self._norms = lengths

    @property
    def n_rows(self) -> int:
        """Number of encoded dataset rows."""
        return int(self.codes.shape[0])

    def prepare_queries(self, queries: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray | None]:
        """Fold queries into the code domain, once per batch.

        Returns ``(folded, bias)``: for ``int8``, ``folded`` is
        ``q * scale`` and ``bias`` the per-query scalar ``q . offset`` (the
        two factors of the affine inner-product identity); for
        ``float16``, the queries are cast to float32 and ``bias`` is
        ``None``.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if self.quantizer.mode == "float16":
            return queries, None
        folded = queries * self.quantizer.scale[None, :]
        bias = queries @ self.quantizer.offset
        return folded, bias

    def block(self, folded: np.ndarray, bias: np.ndarray | None,
              query_norms: np.ndarray | None,
              rows: np.ndarray) -> np.ndarray:
        """Approximate distances of prepared queries to dataset ``rows``.

        One gemm against the gathered code block; the metric epilogue is
        the same reduction the exact engine applies, evaluated with the
        decoded-row norms.  ``query_norms`` are the **exact** query norms
        (queries are never quantized).  Returns a float32
        ``(n_queries, len(rows))`` block.
        """
        inner = folded @ self.codes[rows].astype(np.float32).T
        if bias is not None:
            inner += bias[:, None]
        metric = self.engine.metric
        if metric == "dot":
            return np.negative(inner, out=inner)
        row_norms = self._norms[rows]
        if metric == "sqeuclidean":
            inner *= -2.0
            inner += np.asarray(query_norms,
                                dtype=np.float32)[:, None]
            inner += row_norms[None, :]
            np.maximum(inner, 0.0, out=inner)
            return inner
        inner /= np.asarray(query_norms, dtype=np.float32)[:, None]
        inner /= row_norms[None, :]
        np.subtract(1.0, inner, out=inner)
        np.clip(inner, 0.0, 2.0, out=inner)
        return inner
