"""Two-means (2M) tree — Alg. 1 of the paper.

The two-means tree is a variant of hierarchical bisecting k-means used to
produce the *initial* partition for GK-means (and to drive the clustering step
inside the KNN-graph construction).  It repeatedly pops the largest cluster,
bisects it into two clusters and then **adjusts the two halves to equal
size**, until ``k`` clusters exist.  The equal-size adjustment is what keeps
every leaf at roughly ``n/k`` samples, which the graph-construction step
relies on (the within-cluster exhaustive comparison must stay ``O(ξ²)``).

Complexity is ``O(d·n·log k)`` — cheaper than a single Lloyd iteration when
``k`` is large — which is why the paper uses it instead of k-means++ style
seeding.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..distance import DistanceEngine
from ..exceptions import ValidationError
from ..validation import check_data_matrix, check_positive_int, check_random_state
from .base import BaseClusterer, ClusteringResult, IterationRecord
from .objective import ClusterState

__all__ = ["TwoMeansTree", "two_means_labels"]


def _bisect_lloyd(data: np.ndarray, members: np.ndarray,
                  rng: np.random.Generator, n_iter: int,
                  engine: DistanceEngine) -> np.ndarray:
    """Split ``members`` into two groups with a few vectorised 2-means steps.

    Returns a boolean mask over ``members``: True = second group.
    """
    subset = data[members]
    seeds = rng.choice(members.size, size=2, replace=False)
    centroids = subset[seeds].copy()
    assignment = np.zeros(members.size, dtype=bool)
    for _ in range(n_iter):
        distances = engine.cross(subset, centroids)
        new_assignment = distances[:, 1] < distances[:, 0]
        if new_assignment.all() or not new_assignment.any():
            # Degenerate split (identical seeds); perturb by random halving.
            new_assignment = np.zeros(members.size, dtype=bool)
            new_assignment[rng.permutation(members.size)[: members.size // 2]] = True
        if np.array_equal(new_assignment, assignment):
            assignment = new_assignment
            break
        assignment = new_assignment
        centroids[0] = subset[~assignment].mean(axis=0)
        centroids[1] = subset[assignment].mean(axis=0)
    return assignment


def _bisect_boost(data: np.ndarray, members: np.ndarray,
                  rng: np.random.Generator, n_iter: int,
                  engine: DistanceEngine) -> np.ndarray:
    """Split ``members`` with a small incremental (boost) 2-means.

    This is the faithful version of the paper's Step 8 ("boost k-means is
    integrated in the bisecting operation"); it is slower than the vectorised
    Lloyd bisection because samples are visited one at a time.
    """
    subset = data[members]
    labels = rng.integers(0, 2, size=members.size).astype(np.int64)
    if labels.min() == labels.max():
        labels[rng.integers(members.size)] = 1 - labels[0]
    state = ClusterState(subset, labels, 2)
    both = np.arange(2, dtype=np.int64)
    for _ in range(n_iter):
        moves = 0
        for sample in rng.permutation(members.size):
            target, gain = state.best_move(int(sample), both)
            if gain > 0:
                state.move(int(sample), target)
                moves += 1
        if moves == 0:
            break
    return state.labels.astype(bool)


def _equalize(data: np.ndarray, members: np.ndarray,
              assignment: np.ndarray, engine: DistanceEngine) -> np.ndarray:
    """Adjust a bisection so both halves have (almost) equal size (Alg. 1, l. 9).

    Samples are ranked by how much closer they are to the second centroid than
    to the first; the top half goes to the second cluster.  This preserves the
    spatial structure of the split while forcing balance.
    """
    subset = data[members]
    if assignment.any() and (~assignment).any():
        centroid_a = subset[~assignment].mean(axis=0)
        centroid_b = subset[assignment].mean(axis=0)
    else:
        # Degenerate: split arbitrarily around the global mean direction.
        centroid_a = subset.mean(axis=0)
        centroid_b = centroid_a + 1e-9
    dist_a = engine.cross(subset, centroid_a[None, :])[:, 0]
    dist_b = engine.cross(subset, centroid_b[None, :])[:, 0]
    preference = dist_a - dist_b  # larger = prefers cluster b
    half = members.size // 2
    order = np.argsort(preference, kind="stable")
    balanced = np.zeros(members.size, dtype=bool)
    balanced[order[members.size - half:]] = True
    return balanced


def two_means_labels(data: np.ndarray, n_clusters: int, *, random_state=None,
                     bisection: str = "lloyd", bisect_iter: int = 4,
                     equal_size: bool = True, metric: str = "sqeuclidean",
                     dtype=np.float64) -> np.ndarray:
    """Run Alg. 1 and return the cluster label of every sample.

    Parameters
    ----------
    data:
        ``(n, d)`` sample matrix.
    n_clusters:
        Number of leaves ``k`` to produce.
    random_state:
        Seed or generator.
    bisection:
        ``"lloyd"`` (vectorised 2-means, the fast default) or ``"boost"``
        (incremental 2-means as in the paper's Step 8).
    bisect_iter:
        Iterations of the inner 2-means per bisection.
    equal_size:
        Apply the equal-size adjustment (Alg. 1, line 9).  Disabling it turns
        the procedure into plain bisecting k-means by largest cluster and is
        exposed for the ablation benchmarks.
    metric, dtype:
        Distance engine configuration.  ``sqeuclidean`` and ``cosine`` only —
        bisecting relies on the k-means geometry (cosine rows are normalised
        once up front).
    """
    outer = DistanceEngine(metric, dtype)
    if not outer.kmeans_geometry:
        raise ValidationError(
            f"two-means tree requires the squared-Euclidean or cosine "
            f"metric, got {outer.metric!r}")
    data = check_data_matrix(data, min_samples=1, dtype=outer.dtype)
    data = outer.prepare_clustering(data)
    engine = outer.clustering_engine()
    n = data.shape[0]
    n_clusters = check_positive_int(n_clusters, name="n_clusters", maximum=n)
    bisect_iter = check_positive_int(bisect_iter, name="bisect_iter")
    if bisection not in {"lloyd", "boost"}:
        raise ValidationError(
            f"bisection must be 'lloyd' or 'boost', got {bisection!r}")
    rng = check_random_state(random_state)
    bisect = _bisect_lloyd if bisection == "lloyd" else _bisect_boost

    labels = np.zeros(n, dtype=np.int64)
    # Priority queue keyed by negative size; ties broken by insertion order.
    heap: list[tuple[int, int, np.ndarray]] = []
    counter = 0
    heapq.heappush(heap, (-n, counter, np.arange(n, dtype=np.int64)))
    next_label = 1
    while next_label < n_clusters:
        neg_size, _, members = heapq.heappop(heap)
        size = -neg_size
        if size <= 1:
            # Cannot split further; put it back and stop growing.
            counter += 1
            heapq.heappush(heap, (neg_size, counter, members))
            break
        assignment = bisect(data, members, rng, bisect_iter, engine)
        if equal_size:
            assignment = _equalize(data, members, assignment, engine)
        group_a = members[~assignment]
        group_b = members[assignment]
        if group_a.size == 0 or group_b.size == 0:
            half = members.size // 2
            group_a, group_b = members[:half], members[half:]
        labels[group_b] = next_label
        counter += 1
        heapq.heappush(heap, (-group_a.size, counter, group_a))
        counter += 1
        heapq.heappush(heap, (-group_b.size, counter, group_b))
        next_label += 1
    return labels


class TwoMeansTree(BaseClusterer):
    """Estimator wrapper around :func:`two_means_labels` (Alg. 1).

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    bisection:
        ``"lloyd"`` or ``"boost"`` (see :func:`two_means_labels`).
    bisect_iter:
        Inner 2-means iterations per bisection.
    equal_size:
        Whether to apply the equal-size adjustment.
    random_state:
        Seed or generator.
    """

    def __init__(self, n_clusters: int, *, bisection: str = "lloyd",
                 bisect_iter: int = 4, equal_size: bool = True,
                 random_state=None, metric: str = "sqeuclidean",
                 dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=1, random_state=random_state,
                         metric=metric, dtype=dtype)
        self.bisection = bisection
        self.bisect_iter = bisect_iter
        self.equal_size = equal_size

    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        start = time.perf_counter()
        # ``data`` is already transformed by the base class, so the tree runs
        # with the work engine's (squared-Euclidean) metric.
        labels = two_means_labels(
            data, n_clusters, random_state=rng, bisection=self.bisection,
            bisect_iter=self.bisect_iter, equal_size=self.equal_size,
            metric=self._work_engine.metric, dtype=self._work_engine.dtype)
        state = ClusterState(data, labels, n_clusters)
        elapsed = time.perf_counter() - start
        history = [IterationRecord(iteration=0, distortion=state.distortion,
                                   elapsed_seconds=elapsed, n_moves=0)]
        return ClusteringResult(
            labels=labels, centroids=state.centroids(),
            distortion=state.distortion, history=history, converged=True,
            init_seconds=elapsed, iteration_seconds=0.0,
            extra={"cluster_sizes": np.bincount(labels,
                                                minlength=n_clusters)})
