"""Hamerly's accelerated k-means (SDM 2010).

Like Elkan's algorithm this produces exactly the Lloyd result, but keeps only
*one* lower bound per sample (distance to the second-closest centroid) plus an
upper bound to the closest, so the extra memory is ``O(n)`` instead of
``O(n·k)``.  It trades some pruning power for that memory saving, making it
the practical member of the triangle-inequality family for moderate ``k``.
"""

from __future__ import annotations

import time

import numpy as np

from .base import BaseClusterer, ClusteringResult, IterationRecord
from .initialization import labels_to_centroids, resolve_init

__all__ = ["HamerlyKMeans"]


class HamerlyKMeans(BaseClusterer):
    """Exact k-means with Hamerly's single lower bound.

    Interface mirrors :class:`~repro.cluster.lloyd.KMeans`.  The count of
    sample-to-centroid distance computations is reported in
    ``result_.extra["n_distance_evaluations"]``.
    """

    # Like Elkan, the single lower bound relies on the triangle inequality:
    # valid for sqeuclidean and (via normalisation) cosine, never for "dot".

    def __init__(self, n_clusters: int, *, init: object = "random",
                 max_iter: int = 30, tol: float = 1e-4,
                 random_state=None, metric: str = "sqeuclidean",
                 dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=max_iter,
                         random_state=random_state, metric=metric,
                         dtype=dtype)
        self.init = init
        self.tol = tol

    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        engine = self._work_engine
        n = data.shape[0]
        init_start = time.perf_counter()
        centroids = resolve_init(self.init, data, n_clusters, rng)
        init_seconds = time.perf_counter() - init_start

        distance_evaluations = 0
        all_dist = np.sqrt(engine.cross(data, centroids))
        distance_evaluations += n * n_clusters
        order = np.argsort(all_dist, axis=1)
        labels = order[:, 0].astype(np.int64)
        upper = all_dist[np.arange(n), labels]
        if n_clusters > 1:
            lower = all_dist[np.arange(n), order[:, 1]]
        else:
            lower = np.full(n, np.inf)

        history: list[IterationRecord] = []
        previous_distortion = np.inf
        converged = False
        iter_start = time.perf_counter()
        for iteration in range(max_iter):
            center_dist = np.sqrt(engine.cross(centroids, centroids))
            np.fill_diagonal(center_dist, np.inf)
            s = 0.5 * center_dist.min(axis=1)

            # Prune: only samples whose upper bound exceeds max(s, lower) may move.
            threshold = np.maximum(s[labels], lower)
            candidates = np.nonzero(upper > threshold)[0]
            moves = 0
            if candidates.size:
                block = np.sqrt(engine.cross(data[candidates], centroids))
                distance_evaluations += candidates.size * n_clusters
                cand_order = np.argsort(block, axis=1)
                new_labels = cand_order[:, 0]
                moves = int(np.sum(new_labels != labels[candidates]))
                labels[candidates] = new_labels
                upper[candidates] = block[np.arange(candidates.size), new_labels]
                if n_clusters > 1:
                    lower[candidates] = block[np.arange(candidates.size),
                                              cand_order[:, 1]]

            new_centroids = labels_to_centroids(data, labels, n_clusters,
                                                rng=rng)
            shift = np.sqrt(engine.rowwise(new_centroids, centroids))
            largest = float(shift.max()) if shift.size else 0.0
            upper = upper + shift[labels]
            lower = np.maximum(lower - largest, 0.0)
            centroids = new_centroids

            diffs = data - centroids[labels]
            distortion = float(np.einsum("ij,ij->i", diffs, diffs).mean())
            history.append(IterationRecord(
                iteration=iteration, distortion=distortion,
                elapsed_seconds=time.perf_counter() - iter_start,
                n_moves=moves))
            if (np.isfinite(previous_distortion)
                    and previous_distortion - distortion
                    <= self.tol * max(previous_distortion, 1e-300)):
                converged = True
                break
            previous_distortion = distortion
        iteration_seconds = time.perf_counter() - iter_start

        diffs = data - centroids[labels]
        distortion = float(np.einsum("ij,ij->i", diffs, diffs).mean())
        return ClusteringResult(
            labels=labels, centroids=centroids, distortion=distortion,
            history=history, converged=converged, init_seconds=init_seconds,
            iteration_seconds=iteration_seconds,
            extra={"n_distance_evaluations": distance_evaluations})
