"""Common estimator interface and result containers for all clusterers."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..distance import DistanceEngine
from ..exceptions import NotFittedError, ValidationError
from ..validation import check_data_matrix, check_positive_int, check_random_state

__all__ = ["IterationRecord", "ClusteringResult", "BaseClusterer"]


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one clustering iteration.

    These records are what the figure-level experiments consume: Fig. 5 plots
    ``distortion`` against both ``iteration`` and ``elapsed_seconds``.
    """

    iteration: int
    distortion: float
    elapsed_seconds: float
    n_moves: int = 0


@dataclass
class ClusteringResult:
    """Full output of a clustering run.

    Attributes
    ----------
    labels:
        Final assignment of every sample.
    centroids:
        ``(k, d)`` final cluster centroids.
    distortion:
        Final average distortion (Eqn. 4).
    history:
        Per-iteration :class:`IterationRecord` entries.
    converged:
        Whether the algorithm reached its convergence criterion before
        exhausting ``max_iter``.
    init_seconds, iteration_seconds:
        Wall-clock split between initialisation and the iterative phase —
        Table 2 of the paper reports exactly this split.
    extra:
        Algorithm-specific diagnostics (e.g. graph recall, distance counts).
    """

    labels: np.ndarray
    centroids: np.ndarray
    distortion: float
    history: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    init_seconds: float = 0.0
    iteration_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def n_iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.history)

    @property
    def total_seconds(self) -> float:
        """Initialisation plus iteration wall-clock time."""
        return self.init_seconds + self.iteration_seconds

    @property
    def n_clusters(self) -> int:
        """Number of clusters (rows of ``centroids``)."""
        return int(self.centroids.shape[0])

    def distortion_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(iterations, distortions) arrays for distortion-vs-iteration plots."""
        iterations = np.array([r.iteration for r in self.history])
        distortions = np.array([r.distortion for r in self.history])
        return iterations, distortions

    def time_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(cumulative seconds, distortions) for distortion-vs-time plots."""
        seconds = np.array([r.elapsed_seconds for r in self.history])
        distortions = np.array([r.distortion for r in self.history])
        return seconds, distortions


class BaseClusterer(ABC):
    """Abstract base class with the shared fit/predict plumbing.

    Subclasses implement :meth:`_fit` and receive validated data plus a seeded
    :class:`numpy.random.Generator`.  After ``fit`` the estimator exposes the
    scikit-learn-style attributes ``labels_``, ``cluster_centers_``,
    ``inertia_`` (sum of squared distances), ``distortion_`` (the paper's
    average distortion) and ``result_`` (the full :class:`ClusteringResult`).

    Every clusterer accepts ``metric`` and ``dtype``:  cosine is handled by
    l2-normalising the rows once at fit time, after which the squared-
    Euclidean machinery (boost objective, triangle-inequality bounds, the
    two-means tree) is exact for the transformed space, so centroids,
    distortion and history are all reported in that space.  ``dot`` (inner
    product) has no k-means geometry and is only accepted by estimators that
    declare it in ``_supported_metrics``; ``dtype=float32`` halves the memory
    traffic of the assignment kernels.
    """

    #: Metrics this estimator supports.  "dot" lacks a k-means objective and
    #: is only enabled on estimators whose assignment rule stays meaningful.
    _supported_metrics = frozenset({"sqeuclidean", "cosine"})

    def __init__(self, n_clusters: int, *, max_iter: int = 30,
                 random_state=None, metric: str = "sqeuclidean",
                 dtype=np.float64) -> None:
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.random_state = random_state
        self.metric = metric
        self.dtype = dtype
        self.result_: ClusteringResult | None = None
        self.engine_: DistanceEngine | None = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def fit(self, data) -> "BaseClusterer":
        """Cluster ``data`` and store the result on the estimator."""
        engine = DistanceEngine(self.metric, self.dtype)
        if engine.metric not in self._supported_metrics:
            raise ValidationError(
                f"{type(self).__name__} does not support metric "
                f"{engine.metric!r}; supported: "
                f"{sorted(self._supported_metrics)}")
        data = check_data_matrix(data, min_samples=1, dtype=engine.dtype)
        data = engine.prepare_clustering(data)
        self.engine_ = engine
        self._work_engine = engine.clustering_engine()
        n_clusters = check_positive_int(self.n_clusters, name="n_clusters",
                                        maximum=data.shape[0])
        max_iter = check_positive_int(self.max_iter, name="max_iter")
        rng = check_random_state(self.random_state)
        start = time.perf_counter()
        result = self._fit(data, n_clusters, max_iter, rng)
        # Guard: _fit implementations fill the timing split; if one forgets,
        # fall back to attributing everything to the iteration phase.
        if result.init_seconds == 0.0 and result.iteration_seconds == 0.0:
            result.iteration_seconds = time.perf_counter() - start
        self.result_ = result
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Cluster ``data`` and return the labels."""
        return self.fit(data).labels_

    def predict(self, data) -> np.ndarray:
        """Assign new samples to the nearest fitted centroid.

        New data goes through the same metric transform as ``fit`` (e.g. row
        normalisation under cosine) before the nearest-centroid assignment.
        """
        self._check_fitted()
        data = check_data_matrix(data, dtype=self.engine_.dtype)
        data = self.engine_.prepare_clustering(data)
        labels, _ = self._work_engine.assign_to_nearest(
            data, self.cluster_centers_)
        return labels

    # ------------------------------------------------------------------ #
    # Fitted attributes
    # ------------------------------------------------------------------ #
    @property
    def labels_(self) -> np.ndarray:
        self._check_fitted()
        return self.result_.labels

    @property
    def cluster_centers_(self) -> np.ndarray:
        self._check_fitted()
        return self.result_.centroids

    @property
    def distortion_(self) -> float:
        """Average distortion (Eqn. 4) of the fitted clustering."""
        self._check_fitted()
        return self.result_.distortion

    @property
    def inertia_(self) -> float:
        """Total within-cluster sum of squared distances."""
        self._check_fitted()
        return self.result_.distortion * self.result_.labels.shape[0]

    @property
    def history_(self) -> list[IterationRecord]:
        self._check_fitted()
        return self.result_.history

    @property
    def n_iter_(self) -> int:
        self._check_fitted()
        return self.result_.n_iterations

    # ------------------------------------------------------------------ #
    # Subclass hook
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        """Cluster validated ``data`` into ``n_clusters`` clusters."""

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self.result_ is None:
            raise NotFittedError(
                f"{type(self).__name__} instance is not fitted yet; "
                "call fit() first")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(n_clusters={self.n_clusters}, "
                f"max_iter={self.max_iter})")
