"""Mini-Batch k-means (Sculley, WWW 2010).

The "Mini-Batch" baseline of the paper's Fig. 5–7: each iteration samples a
small batch, assigns only the batch to the nearest centroids and applies a
per-centre learning-rate update.  Very fast per iteration, but — as the paper
observes — it converges to noticeably higher distortion, especially for
large ``k``.
"""

from __future__ import annotations

import time

import numpy as np

from ..validation import check_positive_int
from .base import BaseClusterer, ClusteringResult, IterationRecord
from .initialization import resolve_init

__all__ = ["MiniBatchKMeans"]


class MiniBatchKMeans(BaseClusterer):
    """Web-scale mini-batch k-means.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    batch_size:
        Samples drawn per iteration.
    init:
        ``"random"``, ``"k-means++"`` or an explicit centroid array.
    max_iter:
        Number of mini-batch steps.
    record_every:
        Distortion over the *full* dataset is expensive relative to a
        mini-batch step, so the history records it only every ``record_every``
        iterations (and always on the final one).
    random_state:
        Seed or generator.
    """

    _supported_metrics = frozenset({"sqeuclidean", "cosine", "dot"})

    def __init__(self, n_clusters: int, *, batch_size: int = 256,
                 init: object = "random", max_iter: int = 30,
                 record_every: int = 1, random_state=None,
                 metric: str = "sqeuclidean", dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=max_iter,
                         random_state=random_state, metric=metric,
                         dtype=dtype)
        self.batch_size = batch_size
        self.init = init
        self.record_every = record_every

    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        engine = self._work_engine
        batch_size = check_positive_int(self.batch_size, name="batch_size")
        record_every = check_positive_int(self.record_every,
                                          name="record_every")
        batch_size = min(batch_size, data.shape[0])
        data_norms = engine.norms(data)

        init_start = time.perf_counter()
        centroids = resolve_init(self.init, data, n_clusters, rng)
        init_seconds = time.perf_counter() - init_start

        per_center_counts = np.zeros(n_clusters, dtype=np.int64)
        history: list[IterationRecord] = []
        evaluations = 0
        iter_start = time.perf_counter()
        for iteration in range(max_iter):
            batch_idx = rng.choice(data.shape[0], size=batch_size,
                                   replace=False)
            batch = data[batch_idx]
            batch_norms = None if data_norms is None else data_norms[batch_idx]
            batch_labels, _ = engine.assign_to_nearest(
                batch, centroids, data_norms=batch_norms)
            evaluations += batch_size * n_clusters
            moved = 0
            for row, center in enumerate(batch_labels):
                per_center_counts[center] += 1
                learning_rate = 1.0 / per_center_counts[center]
                centroids[center] = ((1.0 - learning_rate) * centroids[center]
                                     + learning_rate * batch[row])
                moved += 1
            if (iteration % record_every == 0) or iteration == max_iter - 1:
                _, distances = engine.assign_to_nearest(
                    data, centroids, data_norms=data_norms)
                history.append(IterationRecord(
                    iteration=iteration,
                    distortion=float(distances.mean()),
                    elapsed_seconds=time.perf_counter() - iter_start,
                    n_moves=moved))
        iteration_seconds = time.perf_counter() - iter_start

        labels, distances = engine.assign_to_nearest(data, centroids,
                                                     data_norms=data_norms)
        return ClusteringResult(
            labels=labels, centroids=centroids,
            distortion=float(distances.mean()), history=history,
            converged=False, init_seconds=init_seconds,
            iteration_seconds=iteration_seconds,
            extra={"n_distance_evaluations": evaluations})
