"""Elkan's triangle-inequality accelerated k-means (ICML 2003).

Exact k-means acceleration: each sample keeps an upper bound on the distance
to its assigned centroid and a lower bound per centroid; inter-centroid
distances are used to skip comparisons that cannot change the assignment.
This is the classic acceleration family the paper contrasts itself with — the
result is identical to Lloyd, but the extra memory is ``O(n·k)`` for the lower
bounds plus ``O(k²)`` for the centre-to-centre distances, which is what makes
it "unsuitable in the case that k is very large" (§1 of the paper).
"""

from __future__ import annotations

import time

import numpy as np

from .base import BaseClusterer, ClusteringResult, IterationRecord
from .initialization import labels_to_centroids, resolve_init

__all__ = ["ElkanKMeans"]


class ElkanKMeans(BaseClusterer):
    """Exact k-means using Elkan's bounds.

    Parameters are the same as :class:`~repro.cluster.lloyd.KMeans`; the
    result is numerically equivalent to Lloyd iteration from the same
    initialisation, only cheaper when many skips fire.

    The attribute ``result_.extra["n_distance_evaluations"]`` counts the
    sample-to-centroid distances actually computed, which the ablation
    benchmarks compare against Lloyd's ``n·k`` per iteration.
    """

    # The triangle-inequality bounds are only valid in a true metric space:
    # sqeuclidean natively, cosine via the unit-sphere reduction.  "dot" is
    # rejected by the base-class metric check.

    def __init__(self, n_clusters: int, *, init: object = "random",
                 max_iter: int = 30, tol: float = 1e-4,
                 random_state=None, metric: str = "sqeuclidean",
                 dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=max_iter,
                         random_state=random_state, metric=metric,
                         dtype=dtype)
        self.init = init
        self.tol = tol

    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        engine = self._work_engine
        n = data.shape[0]
        init_start = time.perf_counter()
        centroids = resolve_init(self.init, data, n_clusters, rng)
        init_seconds = time.perf_counter() - init_start

        # Work in plain (not squared) distances: the triangle inequality the
        # bounds rely on only holds for the metric itself.
        distance_evaluations = 0
        all_dist = np.sqrt(engine.cross(data, centroids))
        distance_evaluations += n * n_clusters
        labels = np.argmin(all_dist, axis=1)
        upper = all_dist[np.arange(n), labels]
        lower = all_dist.copy()

        history: list[IterationRecord] = []
        previous_distortion = np.inf
        converged = False
        iter_start = time.perf_counter()
        for iteration in range(max_iter):
            # Step 1: inter-centroid distances and the s(c) radii.
            center_dist = np.sqrt(engine.cross(centroids, centroids))
            np.fill_diagonal(center_dist, np.inf)
            s = 0.5 * center_dist.min(axis=1)

            # Step 2-3: identify samples whose assignment may change.
            candidates = np.nonzero(upper > s[labels])[0]
            moves = 0
            for i in candidates:
                current = int(labels[i])
                bound_upper = upper[i]
                tight = False
                for center in range(n_clusters):
                    if center == current:
                        continue
                    if (bound_upper <= lower[i, center]
                            or bound_upper <= 0.5 * center_dist[current, center]):
                        continue
                    if not tight:
                        bound_upper = float(np.sqrt(
                            engine.cross(data[i][None, :],
                                         centroids[current][None, :])[0, 0]))
                        distance_evaluations += 1
                        lower[i, current] = bound_upper
                        upper[i] = bound_upper
                        tight = True
                        if (bound_upper <= lower[i, center]
                                or bound_upper <= 0.5 * center_dist[current, center]):
                            continue
                    dist = float(np.sqrt(
                        engine.cross(data[i][None, :],
                                     centroids[center][None, :])[0, 0]))
                    distance_evaluations += 1
                    lower[i, center] = dist
                    if dist < bound_upper:
                        current = center
                        bound_upper = dist
                        tight = True
                if current != labels[i]:
                    moves += 1
                labels[i] = current
                upper[i] = bound_upper

            # Step 4-7: update centroids and adjust the bounds by the shifts.
            new_centroids = labels_to_centroids(data, labels, n_clusters,
                                                rng=rng)
            shift = np.sqrt(engine.rowwise(new_centroids, centroids))
            lower = np.maximum(lower - shift[None, :], 0.0)
            upper = upper + shift[labels]
            centroids = new_centroids

            # Track true distortion for the history (same protocol as Lloyd).
            _, assigned_sq = _nearest_sq_distances(data, centroids, labels)
            distortion = float(assigned_sq.mean())
            history.append(IterationRecord(
                iteration=iteration, distortion=distortion,
                elapsed_seconds=time.perf_counter() - iter_start,
                n_moves=moves))
            if (np.isfinite(previous_distortion)
                    and previous_distortion - distortion
                    <= self.tol * max(previous_distortion, 1e-300)):
                converged = True
                break
            previous_distortion = distortion
        iteration_seconds = time.perf_counter() - iter_start

        _, assigned_sq = _nearest_sq_distances(data, centroids, labels)
        return ClusteringResult(
            labels=labels.astype(np.int64), centroids=centroids,
            distortion=float(assigned_sq.mean()), history=history,
            converged=converged, init_seconds=init_seconds,
            iteration_seconds=iteration_seconds,
            extra={"n_distance_evaluations": distance_evaluations})


def _nearest_sq_distances(data: np.ndarray, centroids: np.ndarray,
                          labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Squared distance of every sample to its *assigned* centroid."""
    diffs = data - centroids[labels]
    return labels, np.einsum("ij,ij->i", diffs, diffs)
