"""Centroid / label initialisation strategies.

The paper's GK-means initialises with the two-means tree (Alg. 1); the
baselines here support the two standard strategies discussed in §2.1:
uniform-random selection and k-means++ (Arthur & Vassilvitskii 2007).
"""

from __future__ import annotations

import numpy as np

from ..distance import cross_squared_euclidean, squared_norms
from ..exceptions import ValidationError
from ..validation import check_data_matrix, check_positive_int, check_random_state

__all__ = ["random_init", "kmeans_plus_plus_init", "labels_to_centroids",
           "resolve_init"]


def random_init(data: np.ndarray, n_clusters: int, *, random_state=None
                ) -> np.ndarray:
    """Pick ``n_clusters`` distinct samples uniformly at random as centroids."""
    data = check_data_matrix(data)
    n_clusters = check_positive_int(n_clusters, name="n_clusters",
                                    maximum=data.shape[0])
    rng = check_random_state(random_state)
    chosen = rng.choice(data.shape[0], size=n_clusters, replace=False)
    return data[chosen].copy()


def kmeans_plus_plus_init(data: np.ndarray, n_clusters: int, *,
                          random_state=None) -> np.ndarray:
    """k-means++ seeding: each new centre is drawn ∝ squared distance.

    This is the quality-oriented initialisation reviewed in §2.1 of the paper;
    it requires ``k`` passes over the data, which is exactly the extra cost the
    paper's two-means-tree initialisation avoids.
    """
    data = check_data_matrix(data)
    n_clusters = check_positive_int(n_clusters, name="n_clusters",
                                    maximum=data.shape[0])
    rng = check_random_state(random_state)

    n = data.shape[0]
    data_norms = squared_norms(data)
    centers = np.empty((n_clusters, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest = cross_squared_euclidean(data, centers[0][None, :],
                                      a_norms=data_norms)[:, 0]
    for idx in range(1, n_clusters):
        total = closest.sum()
        if total <= 0:
            # All remaining mass is on already-chosen points (duplicates);
            # fall back to uniform choice among the rest.
            probabilities = np.full(n, 1.0 / n)
        else:
            probabilities = closest / total
        chosen = int(rng.choice(n, p=probabilities))
        centers[idx] = data[chosen]
        new_dist = cross_squared_euclidean(data, centers[idx][None, :],
                                           a_norms=data_norms)[:, 0]
        np.minimum(closest, new_dist, out=closest)
    return centers


def labels_to_centroids(data: np.ndarray, labels: np.ndarray,
                        n_clusters: int, *, rng=None) -> np.ndarray:
    """Mean of every cluster; empty clusters are re-seeded with random samples."""
    data = check_data_matrix(data)
    centroids = np.zeros((n_clusters, data.shape[1]), dtype=np.float64)
    np.add.at(centroids, labels, data)
    counts = np.bincount(labels, minlength=n_clusters)
    empty = counts == 0
    nonempty = ~empty
    centroids[nonempty] /= counts[nonempty, None]
    if empty.any():
        rng = check_random_state(rng)
        replacements = rng.choice(data.shape[0], size=int(empty.sum()),
                                  replace=False)
        centroids[empty] = data[replacements]
    return centroids


def resolve_init(init, data: np.ndarray, n_clusters: int, rng) -> np.ndarray:
    """Resolve an ``init`` argument into an initial centroid matrix.

    ``init`` may be the string ``"random"`` or ``"k-means++"``, or an explicit
    ``(n_clusters, d)`` array of starting centroids.
    """
    if isinstance(init, str):
        key = init.lower()
        if key == "random":
            return random_init(data, n_clusters, random_state=rng)
        if key in {"k-means++", "kmeans++", "plusplus"}:
            return kmeans_plus_plus_init(data, n_clusters, random_state=rng)
        raise ValidationError(
            f"unknown init {init!r}; expected 'random', 'k-means++' or an array")
    centers = np.asarray(init, dtype=np.float64)
    if centers.shape != (n_clusters, data.shape[1]):
        raise ValidationError(
            f"explicit init must have shape {(n_clusters, data.shape[1])}, "
            f"got {centers.shape}")
    return centers.copy()
