"""Composite-vector cluster state and the boost k-means objective.

Boost k-means (Zhao et al.) rewrites the k-means distortion (Eqn. 1 of the
paper) into the equivalent maximisation of

.. math::

    I = \\sum_{r=1}^{k} \\frac{D_r^\\top D_r}{n_r},

where :math:`D_r = \\sum_{x_i \\in S_r} x_i` is the *composite vector* of
cluster ``r`` and :math:`n_r` its size (Eqn. 2).  Because

.. math::

    \\sum_r \\sum_{x \\in S_r} \\lVert x - C_r \\rVert^2
        = \\sum_i \\lVert x_i \\rVert^2 - I,

maximising ``I`` minimises the distortion, and the distortion can be tracked
in O(1) per move once ``I`` is maintained incrementally.

:class:`ClusterState` maintains exactly this state — composite vectors,
cluster sizes, squared norms — and exposes the move gain ΔI of Eqn. 3 for an
arbitrary candidate set, which is what both :class:`~repro.cluster.boost.BoostKMeans`
(candidates = all clusters) and :class:`~repro.cluster.gkmeans.GKMeans`
(candidates = clusters of the κ graph neighbours) consume.
"""

from __future__ import annotations

import numpy as np

from ..distance import assign_to_nearest, squared_norms
from ..exceptions import ValidationError
from ..validation import check_data_matrix, check_labels, check_positive_int

__all__ = ["ClusterState", "boost_objective", "distortion_from_labels"]


def boost_objective(data: np.ndarray, labels: np.ndarray,
                    n_clusters: int) -> float:
    """Evaluate the boost k-means objective ``I`` (Eqn. 2) from scratch."""
    state = ClusterState(data, labels, n_clusters)
    return state.objective


def distortion_from_labels(data: np.ndarray, labels: np.ndarray,
                           n_clusters: int | None = None) -> float:
    """Average distortion (Eqn. 4) of a labelling, recomputed exactly.

    Every sample contributes the squared distance to the centroid of the
    cluster it is assigned to; the result is the mean over samples.
    """
    data = check_data_matrix(data)
    labels = check_labels(labels, data.shape[0])
    if n_clusters is None:
        n_clusters = int(labels.max()) + 1 if labels.size else 0
    state = ClusterState(data, labels, n_clusters)
    return state.distortion


class ClusterState:
    """Incrementally maintained composite-vector representation of a clustering.

    Parameters
    ----------
    data:
        ``(n, d)`` sample matrix.  A reference is kept (not copied).
    labels:
        Initial assignment of every sample to a cluster in ``[0, n_clusters)``.
    n_clusters:
        Number of clusters ``k``.

    Attributes
    ----------
    labels:
        Current assignment (int64, owned by the state — mutated by
        :meth:`move`).
    composites:
        ``(k, d)`` matrix of composite vectors :math:`D_r`.
    counts:
        ``(k,)`` cluster sizes :math:`n_r`.
    """

    def __init__(self, data: np.ndarray, labels: np.ndarray,
                 n_clusters: int) -> None:
        self._data = check_data_matrix(data)
        n = self._data.shape[0]
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.labels = check_labels(labels, n).copy()
        if self.labels.size and self.labels.max() >= self.n_clusters:
            raise ValidationError(
                f"labels refer to cluster {self.labels.max()} but only "
                f"{self.n_clusters} clusters exist")

        self._sample_sq_norms = squared_norms(self._data)
        self._total_sq_norm = float(self._sample_sq_norms.sum())

        self.composites = np.zeros((self.n_clusters, self._data.shape[1]),
                                   dtype=np.float64)
        np.add.at(self.composites, self.labels, self._data)
        self.counts = np.bincount(self.labels,
                                  minlength=self.n_clusters).astype(np.int64)
        self._composite_sq_norms = squared_norms(self.composites)

    # ------------------------------------------------------------------ #
    # Objective and distortion
    # ------------------------------------------------------------------ #
    @property
    def objective(self) -> float:
        """Current value of the boost objective ``I`` (Eqn. 2)."""
        nonempty = self.counts > 0
        return float(np.sum(self._composite_sq_norms[nonempty]
                            / self.counts[nonempty]))

    @property
    def distortion(self) -> float:
        """Average distortion (Eqn. 4): ``(sum ||x||^2 - I) / n``."""
        n = self._data.shape[0]
        return (self._total_sq_norm - self.objective) / n

    @property
    def inertia(self) -> float:
        """Total within-cluster sum of squared distances (Eqn. 1)."""
        return self._total_sq_norm - self.objective

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def centroids(self) -> np.ndarray:
        """Cluster centroids ``D_r / n_r``; empty clusters yield zero rows."""
        safe_counts = np.maximum(self.counts, 1)
        return self.composites / safe_counts[:, None]

    def cluster_members(self, cluster: int) -> np.ndarray:
        """Indices of the samples currently assigned to ``cluster``."""
        return np.nonzero(self.labels == cluster)[0]

    # ------------------------------------------------------------------ #
    # Incremental moves (Eqn. 3)
    # ------------------------------------------------------------------ #
    def delta_objective(self, sample_index: int,
                        candidates: np.ndarray) -> np.ndarray:
        """ΔI of moving one sample to each candidate cluster (Eqn. 3).

        Candidates equal to the sample's current cluster get ΔI = 0 (a no-op
        move); candidates that would receive the sample as a new member get the
        full Eqn. 3 value.  Moving the last member out of a singleton cluster
        is scored as if the source cluster simply disappears (its term drops to
        zero), matching the objective's definition over non-empty clusters.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        x = self._data[sample_index]
        x_sq = self._sample_sq_norms[sample_index]
        source = int(self.labels[sample_index])

        source_count = self.counts[source]
        source_sq = self._composite_sq_norms[source]
        if source_count > 1:
            removed_sq = (source_sq
                          - 2.0 * float(self.composites[source] @ x) + x_sq)
            source_term = removed_sq / (source_count - 1) - source_sq / source_count
        else:
            # The source cluster becomes empty; its contribution vanishes.
            source_term = -source_sq / source_count

        cand_counts = self.counts[candidates].astype(np.float64)
        cand_sq = self._composite_sq_norms[candidates]
        cand_dot = self.composites[candidates] @ x
        grown_sq = cand_sq + 2.0 * cand_dot + x_sq
        with np.errstate(divide="ignore", invalid="ignore"):
            target_term = grown_sq / (cand_counts + 1.0) - np.where(
                cand_counts > 0, cand_sq / np.maximum(cand_counts, 1.0), 0.0)
        deltas = target_term + source_term
        deltas[candidates == source] = 0.0
        return deltas

    def best_move(self, sample_index: int,
                  candidates: np.ndarray,
                  *, allow_empty_source: bool = False) -> tuple[int, float]:
        """Best candidate cluster and its ΔI for one sample.

        Parameters
        ----------
        sample_index:
            The sample being considered.
        candidates:
            Candidate cluster ids (may include the current cluster).
        allow_empty_source:
            If false (default) and the sample is the last member of its
            cluster, the move is suppressed (ΔI reported as 0) so the number
            of non-empty clusters never drops below ``k``.
        """
        source = int(self.labels[sample_index])
        if not allow_empty_source and self.counts[source] <= 1:
            return source, 0.0
        deltas = self.delta_objective(sample_index, candidates)
        best = int(np.argmax(deltas))
        return int(candidates[best]), float(deltas[best])

    def move(self, sample_index: int, target: int) -> None:
        """Move one sample to ``target``, updating all incremental state."""
        source = int(self.labels[sample_index])
        if target == source:
            return
        x = self._data[sample_index]
        x_sq = self._sample_sq_norms[sample_index]

        self._composite_sq_norms[source] += (
            -2.0 * float(self.composites[source] @ x) + x_sq)
        self.composites[source] -= x
        self.counts[source] -= 1

        self._composite_sq_norms[target] += (
            2.0 * float(self.composites[target] @ x) + x_sq)
        self.composites[target] += x
        self.counts[target] += 1

        self.labels[sample_index] = target

    # ------------------------------------------------------------------ #
    # Consistency helpers (used by tests and after bulk label edits)
    # ------------------------------------------------------------------ #
    def recompute(self) -> None:
        """Rebuild composites/counts/norms from the current labels."""
        self.composites[:] = 0.0
        np.add.at(self.composites, self.labels, self._data)
        self.counts = np.bincount(self.labels,
                                  minlength=self.n_clusters).astype(np.int64)
        self._composite_sq_norms = squared_norms(self.composites)

    def check_consistency(self, *, atol: float = 1e-6) -> bool:
        """Verify the incremental state matches a from-scratch recomputation."""
        composites = np.zeros_like(self.composites)
        np.add.at(composites, self.labels, self._data)
        counts = np.bincount(self.labels, minlength=self.n_clusters)
        return (np.allclose(composites, self.composites, atol=atol)
                and np.array_equal(counts, self.counts)
                and np.allclose(squared_norms(composites),
                                self._composite_sq_norms, atol=atol))

    # ------------------------------------------------------------------ #
    # Interop with batch (Lloyd-style) algorithms
    # ------------------------------------------------------------------ #
    def reassign_all_to_nearest(self) -> int:
        """One Lloyd pass: assign all samples to the nearest current centroid.

        Returns the number of samples whose label changed; the incremental
        state is rebuilt afterwards.
        """
        centroids = self.centroids()
        new_labels, _ = assign_to_nearest(self._data, centroids)
        changed = int(np.sum(new_labels != self.labels))
        self.labels = new_labels
        self.recompute()
        return changed
