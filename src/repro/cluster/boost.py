"""Boost k-means (Zhao, Deng & Ngo) — the BKM baseline and GK-means engine.

Boost k-means replaces the Lloyd "assign all, then update all" loop with a
stochastic incremental optimisation of the composite-vector objective
(Eqn. 2): samples are visited one at a time in random order, the gain ΔI
(Eqn. 3) of moving the sample to every other cluster is evaluated, and the
best positive move is applied *immediately*.  Checking all ``k`` clusters per
sample keeps the complexity at the Lloyd level (``O(n·d·k)`` per sweep), which
is exactly what GK-means later prunes down to ``O(n·d·κ)`` using the k-NN
graph.
"""

from __future__ import annotations

import time

import numpy as np

from ..validation import check_positive_int
from .base import BaseClusterer, ClusteringResult, IterationRecord
from .objective import ClusterState

__all__ = ["BoostKMeans"]


class BoostKMeans(BaseClusterer):
    """Incremental (boost) k-means.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    max_iter:
        Maximum number of full sweeps over the data.
    min_moves:
        Convergence threshold: stop when a sweep applies at most this many
        moves.
    init_labels:
        Optional initial assignment (e.g. from the two-means tree).  When
        omitted, samples are assigned to clusters uniformly at random, which is
        the initialisation used by the original boost k-means.
    random_state:
        Seed or generator.
    """

    def __init__(self, n_clusters: int, *, max_iter: int = 30,
                 min_moves: int = 0, init_labels: np.ndarray | None = None,
                 random_state=None, metric: str = "sqeuclidean",
                 dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=max_iter,
                         random_state=random_state, metric=metric,
                         dtype=dtype)
        self.min_moves = min_moves
        self.init_labels = init_labels

    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        min_moves = check_positive_int(self.min_moves, name="min_moves",
                                       minimum=0)
        init_start = time.perf_counter()
        if self.init_labels is not None:
            labels = np.asarray(self.init_labels, dtype=np.int64).copy()
        else:
            labels = _random_balanced_labels(data.shape[0], n_clusters, rng)
        state = ClusterState(data, labels, n_clusters)
        init_seconds = time.perf_counter() - init_start

        all_clusters = np.arange(n_clusters, dtype=np.int64)
        history: list[IterationRecord] = []
        converged = False
        evaluations = 0
        iter_start = time.perf_counter()
        for iteration in range(max_iter):
            order = rng.permutation(data.shape[0])
            moves = 0
            evaluations += data.shape[0] * n_clusters
            for sample in order:
                target, gain = state.best_move(int(sample), all_clusters)
                if gain > 0.0:
                    state.move(int(sample), target)
                    moves += 1
            history.append(IterationRecord(
                iteration=iteration, distortion=state.distortion,
                elapsed_seconds=time.perf_counter() - iter_start,
                n_moves=moves))
            if moves <= min_moves:
                converged = True
                break
        iteration_seconds = time.perf_counter() - iter_start

        centroids = state.centroids()
        return ClusteringResult(
            labels=state.labels.copy(), centroids=centroids,
            distortion=state.distortion, history=history,
            converged=converged, init_seconds=init_seconds,
            iteration_seconds=iteration_seconds,
            extra={"objective": state.objective,
                   "n_distance_evaluations": evaluations})

def _random_balanced_labels(n_samples: int, n_clusters: int,
                            rng: np.random.Generator) -> np.ndarray:
    """Random initial labels guaranteeing every cluster is non-empty."""
    labels = rng.integers(0, n_clusters, size=n_samples).astype(np.int64)
    # Force one representative per cluster so no cluster starts empty.
    representatives = rng.choice(n_samples, size=min(n_clusters, n_samples),
                                 replace=False)
    labels[representatives] = np.arange(min(n_clusters, n_samples))
    return labels
