"""Hierarchical bisecting k-means (top-down divisive clustering).

The "easy way to reduce the number of comparisons" discussed in §2.1 of the
paper: the data is split into ``k`` clusters via a sequence of repeated
bisections, bringing the complexity down from ``O(t·k·n·d)`` to
``O(t·log(k)·n·d)`` at the price of breaking the Lloyd condition (each sample
is no longer guaranteed to sit in the globally nearest cluster), which is why
its distortion is usually worse.  Unlike the two-means tree it does *not*
force equal-size leaves and it picks the cluster with the largest
within-cluster error (not the largest size) to split next.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..distance import cross_squared_euclidean
from .base import BaseClusterer, ClusteringResult, IterationRecord
from .objective import ClusterState

__all__ = ["BisectingKMeans"]


class BisectingKMeans(BaseClusterer):
    """Divisive hierarchical k-means.

    Parameters
    ----------
    n_clusters:
        Number of leaf clusters to produce.
    bisect_iter:
        2-means Lloyd iterations used for each split.
    split_criterion:
        ``"sse"`` (split the cluster with the largest within-cluster error,
        the classic choice) or ``"size"`` (largest cluster first).
    random_state:
        Seed or generator.
    """

    def __init__(self, n_clusters: int, *, bisect_iter: int = 8,
                 split_criterion: str = "sse", random_state=None,
                 metric: str = "sqeuclidean", dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=1, random_state=random_state,
                         metric=metric, dtype=dtype)
        self.bisect_iter = bisect_iter
        self.split_criterion = split_criterion

    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        start = time.perf_counter()
        n = data.shape[0]
        labels = np.zeros(n, dtype=np.int64)

        heap: list[tuple[float, int, np.ndarray]] = []
        counter = 0
        heapq.heappush(heap, (-self._priority(data, np.arange(n)), counter,
                              np.arange(n, dtype=np.int64)))
        next_label = 1
        while next_label < n_clusters and heap:
            _, _, members = heapq.heappop(heap)
            if members.size <= 1:
                counter += 1
                heapq.heappush(heap, (0.0, counter, members))
                break
            mask = self._bisect(data, members, rng)
            group_a, group_b = members[~mask], members[mask]
            if group_a.size == 0 or group_b.size == 0:
                half = members.size // 2
                group_a, group_b = members[:half], members[half:]
            labels[group_b] = next_label
            for group in (group_a, group_b):
                counter += 1
                heapq.heappush(heap, (-self._priority(data, group), counter,
                                      group))
            next_label += 1

        state = ClusterState(data, labels, n_clusters)
        elapsed = time.perf_counter() - start
        history = [IterationRecord(iteration=0, distortion=state.distortion,
                                   elapsed_seconds=elapsed, n_moves=0)]
        return ClusteringResult(
            labels=labels, centroids=state.centroids(),
            distortion=state.distortion, history=history, converged=True,
            init_seconds=0.0, iteration_seconds=elapsed)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _priority(self, data: np.ndarray, members: np.ndarray) -> float:
        """Split priority of a cluster (higher = split sooner)."""
        if members.size <= 1:
            return 0.0
        if self.split_criterion == "size":
            return float(members.size)
        subset = data[members]
        centroid = subset.mean(axis=0)
        return float(
            cross_squared_euclidean(subset, centroid[None, :])[:, 0].sum())

    def _bisect(self, data: np.ndarray, members: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
        """2-means Lloyd split of ``members``; True marks the second group."""
        subset = data[members]
        seeds = rng.choice(members.size, size=2, replace=False)
        centroids = subset[seeds].copy()
        assignment = np.zeros(members.size, dtype=bool)
        for _ in range(self.bisect_iter):
            distances = cross_squared_euclidean(subset, centroids)
            new_assignment = distances[:, 1] < distances[:, 0]
            if new_assignment.all() or not new_assignment.any():
                new_assignment = np.zeros(members.size, dtype=bool)
                half = members.size // 2
                new_assignment[rng.permutation(members.size)[:half]] = True
            if np.array_equal(new_assignment, assignment):
                break
            assignment = new_assignment
            centroids[0] = subset[~assignment].mean(axis=0)
            centroids[1] = subset[assignment].mean(axis=0)
        return assignment
