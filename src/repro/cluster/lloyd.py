"""Traditional k-means (Lloyd's algorithm).

This is the "k-means" baseline of the paper's figures: each iteration assigns
every sample to its nearest centroid (cost ``O(n·d·k)`` — the bottleneck the
paper attacks) and then recomputes the centroids as cluster means.
"""

from __future__ import annotations

import time

import numpy as np

from ..distance import DistanceCounter
from .base import BaseClusterer, ClusteringResult, IterationRecord
from .initialization import labels_to_centroids, resolve_init

__all__ = ["KMeans"]


class KMeans(BaseClusterer):
    """Lloyd's k-means.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    init:
        ``"random"``, ``"k-means++"`` or an explicit ``(k, d)`` centroid array.
    max_iter:
        Maximum number of assign/update iterations.
    tol:
        Relative distortion improvement below which the iteration stops.
    random_state:
        Seed or generator.
    count_distances:
        When true, the number of sample-to-centroid distance evaluations is
        accumulated in ``result_.extra["n_distance_evaluations"]``.
    metric, dtype:
        Distance engine configuration (see :class:`BaseClusterer`).  ``dot``
        assigns each sample to the centroid of largest inner product — a
        heuristic MIPS partitioner with no convergence guarantee.
    """

    _supported_metrics = frozenset({"sqeuclidean", "cosine", "dot"})

    def __init__(self, n_clusters: int, *, init: object = "random",
                 max_iter: int = 30, tol: float = 1e-4, random_state=None,
                 count_distances: bool = False, metric: str = "sqeuclidean",
                 dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=max_iter,
                         random_state=random_state, metric=metric,
                         dtype=dtype)
        self.init = init
        self.tol = tol
        self.count_distances = count_distances

    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        engine = self._work_engine
        counter = DistanceCounter() if self.count_distances else None
        data_norms = engine.norms(data)

        init_start = time.perf_counter()
        centroids = resolve_init(self.init, data, n_clusters, rng)
        init_seconds = time.perf_counter() - init_start

        history: list[IterationRecord] = []
        previous_labels = np.full(data.shape[0], -1, dtype=np.int64)
        previous_distortion = np.inf
        converged = False
        iter_start = time.perf_counter()
        for iteration in range(max_iter):
            labels, distances = engine.assign_to_nearest(
                data, centroids, data_norms=data_norms, counter=counter)
            n_moves = int(np.sum(labels != previous_labels))
            previous_labels = labels
            distortion = float(distances.mean())
            elapsed = time.perf_counter() - iter_start
            history.append(IterationRecord(iteration=iteration,
                                           distortion=distortion,
                                           elapsed_seconds=elapsed,
                                           n_moves=n_moves))
            centroids = labels_to_centroids(data, labels, n_clusters, rng=rng)
            if (np.isfinite(previous_distortion)
                    and previous_distortion - distortion
                    <= self.tol * max(previous_distortion, 1e-300)):
                converged = True
                break
            previous_distortion = distortion
        iteration_seconds = time.perf_counter() - iter_start

        # Final distortion against the last centroid update.
        labels, distances = engine.assign_to_nearest(
            data, centroids, data_norms=data_norms, counter=counter)
        extra = {}
        if counter is not None:
            extra["n_distance_evaluations"] = counter.count
        return ClusteringResult(
            labels=labels, centroids=centroids,
            distortion=float(distances.mean()), history=history,
            converged=converged, init_seconds=init_seconds,
            iteration_seconds=iteration_seconds, extra=extra)
