"""GK-means — the paper's Alg. 2: k-means driven by a k-NN graph.

The algorithm keeps the incremental (boost) k-means optimisation but, for each
visited sample, only considers the clusters in which the sample's κ nearest
graph neighbours currently live.  The candidate set has at most κ entries
(usually far fewer, since neighbours share clusters), so one sweep costs
``O(n·d·κ)`` regardless of the cluster count ``k`` — that independence from
``k`` is the whole point of the paper.

Two assignment flavours are provided, matching §5.2's configuration study:

* ``assignment="boost"`` — the standard **GK-means**: the best ΔI move
  (Eqn. 3) among the candidate clusters is applied immediately.
* ``assignment="lloyd"`` — **GK-means⁻**: the sample is assigned to the
  nearest candidate *centroid*, centroids being recomputed once per sweep as
  in traditional k-means.

The supporting k-NN graph can be passed in explicitly (e.g. one produced by
NN-Descent, the paper's "KGraph+GK-means" runs) or built internally with the
paper's own construction (Alg. 3, ``graph_builder="clustering"``).
"""

from __future__ import annotations

import time

import numpy as np

from ..distance import DistanceCounter, DistanceEngine
from ..exceptions import ValidationError
from ..validation import check_knn_indices, check_positive_int
from .base import BaseClusterer, ClusteringResult, IterationRecord
from .initialization import labels_to_centroids
from .objective import ClusterState
from .two_means_tree import two_means_labels

__all__ = [
    "GKMeans",
    "gather_candidate_clusters",
    "graph_guided_boost_pass",
    "graph_guided_lloyd_assign",
]


def gather_candidate_clusters(labels: np.ndarray, neighbor_ids: np.ndarray,
                              current: int) -> np.ndarray:
    """Clusters in which the given neighbours live, plus the current cluster.

    This is lines 7–11 of Alg. 2: the candidate set ``Q``.
    """
    valid = neighbor_ids[neighbor_ids >= 0]
    candidates = labels[valid]
    return np.unique(np.append(candidates, current))


def graph_guided_boost_pass(state: ClusterState, neighbor_indices: np.ndarray,
                            rng: np.random.Generator, *,
                            protect_singletons: bool = True,
                            counter=None) -> int:
    """One incremental sweep of Alg. 2 over all samples in random order.

    For every sample the candidate clusters are gathered from its graph
    neighbours and the best positive ΔI move is applied immediately.  Returns
    the number of moves performed.

    ``counter`` (a :class:`~repro.distance.DistanceCounter`) accumulates the
    number of sample-to-cluster evaluations performed — the quantity whose
    reduction from ``k`` to at most κ per sample is the paper's speed-up.
    """
    n = neighbor_indices.shape[0]
    labels = state.labels
    moves = 0
    for sample in rng.permutation(n):
        sample = int(sample)
        current = int(labels[sample])
        if protect_singletons and state.counts[current] <= 1:
            continue
        candidates = gather_candidate_clusters(
            labels, neighbor_indices[sample], current)
        if counter is not None:
            counter.add(candidates.size)
        if candidates.size <= 1:
            continue
        deltas = state.delta_objective(sample, candidates)
        best = int(np.argmax(deltas))
        if deltas[best] > 0.0:
            state.move(sample, int(candidates[best]))
            moves += 1
    return moves


def graph_guided_lloyd_assign(data: np.ndarray, labels: np.ndarray,
                              centroids: np.ndarray,
                              neighbor_indices: np.ndarray, *,
                              data_norms: np.ndarray | None = None,
                              block_size: int = 1024,
                              engine: DistanceEngine | None = None
                              ) -> np.ndarray:
    """Batch assignment restricted to graph-candidate centroids (GK-means⁻).

    Every sample is compared against the centroids of the clusters containing
    its graph neighbours (and its own current cluster); the closest (under
    ``engine``'s metric, squared-Euclidean by default) wins.  Processed in
    blocks so the gathered ``(block, κ+1, d)`` centroid tensor stays small.
    """
    if engine is None:
        engine = DistanceEngine()
    data = engine.prepare(data)
    centroids = engine.prepare(centroids)
    n = data.shape[0]
    if engine.metric != "dot" and data_norms is None:
        data_norms = engine.norms(data)
    centroid_norms = engine.norms(centroids)

    new_labels = np.empty(n, dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block_neighbors = neighbor_indices[start:stop]
        # Candidate cluster ids per sample: neighbours' labels + own label.
        candidate_labels = labels[np.maximum(block_neighbors, 0)]
        candidate_labels = np.where(block_neighbors >= 0, candidate_labels,
                                    labels[start:stop, None])
        candidate_labels = np.concatenate(
            [candidate_labels, labels[start:stop, None]], axis=1)
        gathered = centroids[candidate_labels]            # (b, κ+1, d)
        dots = np.einsum("bd,bcd->bc", data[start:stop], gathered)
        dists = engine.from_inner(
            dots,
            None if data_norms is None else data_norms[start:stop],
            None if centroid_norms is None
            else centroid_norms[candidate_labels])
        best = np.argmin(dists, axis=1)
        new_labels[start:stop] = candidate_labels[np.arange(stop - start), best]
    return new_labels


class GKMeans(BaseClusterer):
    """Fast k-means driven by an (approximate) k-NN graph — Alg. 2.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_neighbors:
        κ — number of graph neighbours considered per sample (paper default 50;
        quality is reported to be stable for κ ≥ 40).
    graph:
        Optional pre-built :class:`~repro.graph.knngraph.KNNGraph` (or a plain
        ``(n, κ)`` neighbour index array).  When omitted a graph is built
        internally using ``graph_builder``.
    graph_builder:
        ``"clustering"`` (the paper's Alg. 3), ``"nn-descent"`` (the
        KGraph+GK-means configuration) or ``"brute-force"`` (exact graph,
        useful for ablations).  Ignored when ``graph`` is given.
    graph_tau:
        τ — rounds of the clustering-based graph construction (paper: 10).
    graph_cluster_size:
        ξ — target cluster size of the graph construction (paper: 50).
    assignment:
        ``"boost"`` for GK-means (default) or ``"lloyd"`` for GK-means⁻.
    init:
        ``"two-means"`` (Alg. 1, the paper's choice), ``"random"`` (random
        balanced labels) or an explicit initial label vector.
    bisection:
        Bisection routine of the two-means tree (``"lloyd"`` or ``"boost"``).
    max_iter:
        Maximum number of sweeps.
    min_moves:
        Convergence threshold on the number of moves per sweep.
    random_state:
        Seed or generator.
    metric:
        ``"sqeuclidean"`` (default), ``"cosine"`` (rows are l2-normalised
        once, then everything runs in the exact squared-Euclidean reduction)
        or ``"dot"`` (inner product; requires ``assignment="lloyd"`` and a
        non-clustering graph builder, since the boost ΔI objective and Alg. 3
        both need the k-means geometry).
    dtype:
        ``float64`` (default) or ``float32`` for the distance kernels.

    Attributes
    ----------
    graph_:
        The k-NN graph actually used (built or supplied).
    """

    _supported_metrics = frozenset({"sqeuclidean", "cosine", "dot"})

    def __init__(self, n_clusters: int, *, n_neighbors: int = 50,
                 graph=None, graph_builder: str = "clustering",
                 graph_tau: int = 10, graph_cluster_size: int = 50,
                 assignment: str = "boost", init: object = "two-means",
                 bisection: str = "lloyd", max_iter: int = 30,
                 min_moves: int = 0, tol: float = 1e-4,
                 random_state=None, metric: str = "sqeuclidean",
                 dtype=np.float64) -> None:
        super().__init__(n_clusters, max_iter=max_iter,
                         random_state=random_state, metric=metric,
                         dtype=dtype)
        self.n_neighbors = n_neighbors
        self.graph = graph
        self.graph_builder = graph_builder
        self.graph_tau = graph_tau
        self.graph_cluster_size = graph_cluster_size
        self.assignment = assignment
        self.init = init
        self.bisection = bisection
        self.min_moves = min_moves
        self.tol = tol
        self.graph_ = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _fit(self, data: np.ndarray, n_clusters: int, max_iter: int,
             rng: np.random.Generator) -> ClusteringResult:
        if self.assignment not in {"boost", "lloyd"}:
            raise ValidationError(
                f"assignment must be 'boost' or 'lloyd', got {self.assignment!r}")
        engine = self._work_engine
        if engine.metric == "dot" and self.assignment != "lloyd":
            raise ValidationError(
                "metric 'dot' has no boost (ΔI) objective; use "
                "assignment='lloyd' for inner-product GK-means")
        n_neighbors = check_positive_int(self.n_neighbors, name="n_neighbors",
                                         maximum=max(1, data.shape[0] - 1))
        min_moves = check_positive_int(self.min_moves, name="min_moves",
                                       minimum=0)

        init_start = time.perf_counter()
        neighbor_indices, graph_seconds = self._resolve_graph(
            data, n_neighbors, rng)
        labels = self._initial_labels(data, n_clusters, rng)
        state = ClusterState(data, labels, n_clusters)
        init_seconds = time.perf_counter() - init_start

        history: list[IterationRecord] = []
        converged = False
        counter = DistanceCounter()
        iter_start = time.perf_counter()
        if self.assignment == "boost":
            for iteration in range(max_iter):
                moves = graph_guided_boost_pass(state, neighbor_indices, rng,
                                                counter=counter)
                history.append(IterationRecord(
                    iteration=iteration, distortion=state.distortion,
                    elapsed_seconds=time.perf_counter() - iter_start,
                    n_moves=moves))
                if moves <= min_moves:
                    converged = True
                    break
            labels = state.labels.copy()
            centroids = state.centroids()
            distortion = state.distortion
        else:
            data_norms = engine.norms(data)
            labels = state.labels.copy()
            centroids = state.centroids()
            previous_distortion = np.inf
            for iteration in range(max_iter):
                new_labels = graph_guided_lloyd_assign(
                    data, labels, centroids, neighbor_indices,
                    data_norms=data_norms, engine=engine)
                counter.add(data.shape[0] * (neighbor_indices.shape[1] + 1))
                moves = int(np.sum(new_labels != labels))
                labels = new_labels
                centroids = labels_to_centroids(data, labels, n_clusters,
                                                rng=rng)
                distortion = float(
                    engine.rowwise(data, centroids[labels]).mean())
                history.append(IterationRecord(
                    iteration=iteration, distortion=distortion,
                    elapsed_seconds=time.perf_counter() - iter_start,
                    n_moves=moves))
                relative_gain_small = (
                    np.isfinite(previous_distortion)
                    and previous_distortion - distortion
                    <= self.tol * max(previous_distortion, 1e-300))
                if moves <= min_moves or relative_gain_small:
                    converged = True
                    break
                previous_distortion = distortion
            distortion = float(engine.rowwise(data, centroids[labels]).mean())
        iteration_seconds = time.perf_counter() - iter_start

        return ClusteringResult(
            labels=labels, centroids=centroids, distortion=distortion,
            history=history, converged=converged,
            init_seconds=init_seconds, iteration_seconds=iteration_seconds,
            extra={"graph_seconds": graph_seconds,
                   "assignment": self.assignment,
                   "n_neighbors": n_neighbors,
                   "n_distance_evaluations": counter.count,
                   "graph_distance_evaluations": self._graph_evaluations})

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _resolve_graph(self, data: np.ndarray, n_neighbors: int,
                       rng: np.random.Generator) -> tuple[np.ndarray, float]:
        """Return the ``(n, κ)`` neighbour index matrix plus build time."""
        self._graph_evaluations = 0
        if self.graph is not None:
            indices = getattr(self.graph, "indices", self.graph)
            indices = check_knn_indices(indices, data.shape[0])
            if indices.shape[1] > n_neighbors:
                indices = indices[:, :n_neighbors]
            self.graph_ = self.graph
            return np.ascontiguousarray(indices), 0.0

        start = time.perf_counter()
        builder = str(self.graph_builder).lower()
        # Builders run in the already-transformed clustering space, so they
        # get the *work* engine's metric (sqeuclidean for cosine input).
        work = self._work_engine
        if builder == "clustering":
            # Imported lazily: repro.graph.construction itself calls back into
            # this module, and a module-level import would create a cycle.
            from ..graph.construction import build_knn_graph_by_clustering
            result = build_knn_graph_by_clustering(
                data, n_neighbors, tau=self.graph_tau,
                cluster_size=self.graph_cluster_size, random_state=rng,
                metric=work.metric, dtype=work.dtype)
            graph = result.graph
            self._graph_evaluations = result.n_distance_evaluations
        elif builder in {"nn-descent", "nndescent", "kgraph"}:
            from ..graph.nndescent import NNDescent
            nn_builder = NNDescent(n_neighbors=n_neighbors, random_state=rng,
                                   metric=work.metric, dtype=work.dtype)
            graph = nn_builder.build(data)
            self._graph_evaluations = nn_builder.n_distance_evaluations_
        elif builder in {"brute-force", "bruteforce", "exact"}:
            from ..graph.bruteforce import brute_force_knn_graph
            graph = brute_force_knn_graph(data, n_neighbors,
                                          metric=work.metric,
                                          dtype=work.dtype)
        else:
            raise ValidationError(
                "graph_builder must be 'clustering', 'nn-descent' or "
                f"'brute-force', got {self.graph_builder!r}")
        self.graph_ = graph
        return np.ascontiguousarray(graph.indices), time.perf_counter() - start

    def _initial_labels(self, data: np.ndarray, n_clusters: int,
                        rng: np.random.Generator) -> np.ndarray:
        """Initial partition: two-means tree, random, or user-provided labels."""
        if isinstance(self.init, str):
            key = self.init.lower()
            if key in {"two-means", "2m", "two_means"}:
                # ``data`` is already in the clustering space; the tree always
                # bisects with l2 geometry (also for "dot", where it is just a
                # spatial splitting heuristic).
                work = self._work_engine
                metric = work.metric if work.kmeans_geometry else "sqeuclidean"
                return two_means_labels(data, n_clusters, random_state=rng,
                                        bisection=self.bisection,
                                        metric=metric, dtype=work.dtype)
            if key == "random":
                labels = rng.integers(0, n_clusters,
                                      size=data.shape[0]).astype(np.int64)
                representatives = rng.choice(
                    data.shape[0], size=min(n_clusters, data.shape[0]),
                    replace=False)
                labels[representatives] = np.arange(
                    min(n_clusters, data.shape[0]))
                return labels
            raise ValidationError(
                f"init must be 'two-means', 'random' or a label array, "
                f"got {self.init!r}")
        labels = np.asarray(self.init, dtype=np.int64)
        if labels.shape != (data.shape[0],):
            raise ValidationError(
                f"init labels must have shape ({data.shape[0]},), "
                f"got {labels.shape}")
        return labels.copy()
