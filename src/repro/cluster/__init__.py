"""Clustering algorithms.

The paper's contribution (:class:`~repro.cluster.gkmeans.GKMeans`) plus every
baseline it is compared against or built upon:

* :class:`~repro.cluster.lloyd.KMeans` — traditional Lloyd iteration.
* :class:`~repro.cluster.boost.BoostKMeans` — Zhao et al.'s incremental
  optimisation of the composite-vector objective (Eqn. 2/3), the engine
  GK-means is built on.
* :class:`~repro.cluster.two_means_tree.TwoMeansTree` — Alg. 1, the
  equal-size bisecting tree used for initialisation.
* :class:`~repro.cluster.minibatch.MiniBatchKMeans` — Sculley 2010.
* :class:`~repro.cluster.closure.ClosureKMeans` — Wang et al. 2012.
* :class:`~repro.cluster.elkan.ElkanKMeans`,
  :class:`~repro.cluster.hamerly.HamerlyKMeans` — triangle-inequality
  accelerated exact k-means (the classic acceleration family).
* :class:`~repro.cluster.bisecting.BisectingKMeans` — hierarchical baseline.
* :class:`~repro.cluster.gkmeans.GKMeans` — Alg. 2, the KNN-graph-driven
  fast k-means (the paper's GK-means and GK-means⁻).
"""

from .base import BaseClusterer, ClusteringResult, IterationRecord
from .objective import ClusterState, boost_objective, distortion_from_labels
from .initialization import (
    random_init,
    kmeans_plus_plus_init,
    labels_to_centroids,
)
from .lloyd import KMeans
from .boost import BoostKMeans
from .minibatch import MiniBatchKMeans
from .elkan import ElkanKMeans
from .hamerly import HamerlyKMeans
from .bisecting import BisectingKMeans
from .two_means_tree import TwoMeansTree, two_means_labels
from .closure import ClosureKMeans
from .gkmeans import GKMeans

__all__ = [
    "BaseClusterer",
    "ClusteringResult",
    "IterationRecord",
    "ClusterState",
    "boost_objective",
    "distortion_from_labels",
    "random_init",
    "kmeans_plus_plus_init",
    "labels_to_centroids",
    "KMeans",
    "BoostKMeans",
    "MiniBatchKMeans",
    "ElkanKMeans",
    "HamerlyKMeans",
    "BisectingKMeans",
    "TwoMeansTree",
    "two_means_labels",
    "ClosureKMeans",
    "GKMeans",
]
