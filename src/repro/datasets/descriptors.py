"""Descriptor-specific synthetic stand-ins for the paper's datasets.

The paper evaluates on four corpora (Table 1):

=========  =====  ====  ==========================================
Dataset    Size   Dim   Data type
=========  =====  ====  ==========================================
SIFT1M     1M     128   SIFT local image descriptors
VLAD10M    10M    512   VLAD aggregated descriptors from YFCC100M
Glove1M    1M     100   GloVe word embeddings
GIST1M     1M     960   GIST global image descriptors
=========  =====  ====  ==========================================

None of these can be shipped here, so each generator below synthesises data
with the statistical properties that matter to the algorithms under test:

* **clustered l2 geometry** — nearest neighbours overwhelmingly share a
  generating mode, which is the property Fig. 1 measures and GK-means exploits;
* **the right value range / sign structure** — SIFT is non-negative and
  integer-quantised, GIST lies in ``[0, 1]``, GloVe is roughly centred and
  mildly anisotropic, VLAD rows are l2-normalised;
* **heavy-tailed mode sizes** for the text corpus.

Absolute distortion values will of course differ from the paper; the
benchmarks only rely on relative comparisons between algorithms on the same
generated data, which these properties preserve.
"""

from __future__ import annotations

import numpy as np

from ..distance.norms import normalize_rows
from ..validation import check_positive_int, check_random_state
from .synthetic import make_hierarchical_blobs, make_imbalanced_blobs

__all__ = [
    "make_sift_like",
    "make_gist_like",
    "make_glove_like",
    "make_vlad_like",
]


def make_sift_like(n_samples: int, n_features: int = 128, *,
                   n_modes: int = 256, random_state=None,
                   return_labels: bool = False):
    """SIFT-like descriptors: non-negative, integer-quantised, clustered.

    Real SIFT vectors are 128-d gradient histograms with entries in
    ``[0, 255]`` (after the usual 512-scaling) and strong local clustering.
    The stand-in draws a two-level hierarchical mixture, shifts/clips to the
    non-negative orthant and quantises to integers stored as ``float64``.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    rng = check_random_state(random_state)

    n_super = max(4, int(round(np.sqrt(n_modes))))
    n_sub = max(2, n_modes // n_super)
    data, labels = make_hierarchical_blobs(
        n_samples, n_features, n_super=n_super, n_sub_per_super=n_sub,
        super_std=28.0, sub_std=7.0, noise_std=2.0, random_state=rng)
    # Shift to the non-negative orthant and quantise like real SIFT bins.
    data = data - data.min()
    data = np.clip(data, 0.0, None)
    scale = 255.0 / max(data.max(), 1e-12)
    data = np.floor(data * scale)
    if return_labels:
        return data, labels
    return data


def make_gist_like(n_samples: int, n_features: int = 960, *,
                   n_modes: int = 128, random_state=None,
                   return_labels: bool = False):
    """GIST-like descriptors: high-dimensional, dense, bounded in ``[0, 1]``.

    GIST is a 960-d global scene descriptor with small dynamic range; the
    relevant stress here is the very high dimensionality (the ``d`` factor in
    every complexity expression).
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    rng = check_random_state(random_state)

    n_super = max(4, int(round(np.sqrt(n_modes))))
    n_sub = max(2, n_modes // n_super)
    data, labels = make_hierarchical_blobs(
        n_samples, n_features, n_super=n_super, n_sub_per_super=n_sub,
        super_std=0.8, sub_std=0.25, noise_std=0.05, random_state=rng)
    # Squash into [0, 1] with a logistic map, mimicking the bounded range.
    data = 1.0 / (1.0 + np.exp(-data / 2.0))
    if return_labels:
        return data, labels
    return data


def make_glove_like(n_samples: int, n_features: int = 100, *,
                    n_modes: int = 200, imbalance: float = 1.2,
                    random_state=None, return_labels: bool = False):
    """GloVe-like word embeddings: centred, anisotropic, imbalanced modes.

    Word embedding spaces have a few huge semantic neighbourhoods and a long
    tail of small ones; the imbalanced mixture reproduces that, which is what
    makes Glove1M the hardest dataset for equal-size initialisation in the
    paper's Fig. 5(c).
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    rng = check_random_state(random_state)

    data, labels = make_imbalanced_blobs(
        n_samples, n_features, n_modes, cluster_std=1.0, center_box=6.0,
        imbalance=imbalance, random_state=rng)
    # Anisotropy: stretch a random subset of directions, as in learned spaces.
    scales = rng.uniform(0.5, 2.0, size=n_features)
    data = data * scales[None, :]
    data -= data.mean(axis=0, keepdims=True)
    if return_labels:
        return data, labels
    return data


def make_vlad_like(n_samples: int, n_features: int = 512, *,
                   n_modes: int = 512, random_state=None,
                   return_labels: bool = False):
    """VLAD-like aggregated descriptors: l2-normalised, block-sparse-ish.

    VLAD concatenates per-visual-word residuals and is power+l2 normalised,
    so rows live on the unit sphere and many blocks are near zero.  The
    stand-in draws a hierarchical mixture, applies signed square-root power
    normalisation and l2-normalises each row.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    rng = check_random_state(random_state)

    n_super = max(4, int(round(np.sqrt(n_modes))))
    n_sub = max(2, n_modes // n_super)
    data, labels = make_hierarchical_blobs(
        n_samples, n_features, n_super=n_super, n_sub_per_super=n_sub,
        super_std=2.0, sub_std=0.6, noise_std=0.1, random_state=rng)
    # Zero out a random block per super-mode to mimic inactive visual words.
    block = max(4, n_features // 16)
    starts = rng.integers(0, max(1, n_features - block), size=data.shape[0])
    cols = starts[:, None] + np.arange(block)[None, :]
    rows = np.repeat(np.arange(data.shape[0]), block)
    data[rows, cols.ravel()] *= 0.05
    # Power (signed sqrt) + l2 normalisation, the standard VLAD post-processing.
    data = np.sign(data) * np.sqrt(np.abs(data))
    data = normalize_rows(data, copy=False)
    if return_labels:
        return data, labels
    return data
