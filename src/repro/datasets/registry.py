"""Registry of named datasets (the scaled stand-ins for the paper's Table 1).

Every entry mirrors one row of Table 1 in the paper.  The ``paper_size`` /
``paper_dim`` fields document the original corpus; ``default_size`` /
``default_dim`` are the laptop-scale defaults used by the benchmark harness.
Both size and dimensionality can be overridden at load time, so the same code
runs the full-scale experiment if the user has the time (and, via
:mod:`repro.datasets.io`, the real corpora).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import DatasetError
from ..validation import check_positive_int
from .descriptors import (
    make_gist_like,
    make_glove_like,
    make_sift_like,
    make_vlad_like,
)

__all__ = ["DatasetSpec", "DATASET_REGISTRY", "load_dataset", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset stand-in.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"sift1m"``).
    paper_size, paper_dim:
        Scale used in the paper's Table 1.
    default_size, default_dim:
        Scaled-down defaults used by the local benchmarks.
    data_type:
        Human-readable description matching Table 1's "Data type" column.
    generator:
        Callable ``(n_samples, n_features, random_state, return_labels)`` that
        synthesises the stand-in.
    """

    name: str
    paper_size: int
    paper_dim: int
    default_size: int
    default_dim: int
    data_type: str
    generator: Callable = field(repr=False, compare=False)

    def generate(self, n_samples: int | None = None,
                 n_features: int | None = None, *, random_state=None,
                 return_labels: bool = False):
        """Generate the stand-in at the requested (or default) scale."""
        n_samples = check_positive_int(
            self.default_size if n_samples is None else n_samples,
            name="n_samples")
        n_features = check_positive_int(
            self.default_dim if n_features is None else n_features,
            name="n_features")
        return self.generator(n_samples, n_features,
                              random_state=random_state,
                              return_labels=return_labels)


DATASET_REGISTRY: dict[str, DatasetSpec] = {
    "sift1m": DatasetSpec(
        name="sift1m", paper_size=1_000_000, paper_dim=128,
        default_size=10_000, default_dim=32,
        data_type="SIFT local descriptors", generator=make_sift_like),
    "sift100k": DatasetSpec(
        name="sift100k", paper_size=100_000, paper_dim=128,
        default_size=5_000, default_dim=32,
        data_type="SIFT local descriptors (subset)", generator=make_sift_like),
    "vlad10m": DatasetSpec(
        name="vlad10m", paper_size=10_000_000, paper_dim=512,
        default_size=20_000, default_dim=64,
        data_type="VLAD aggregated descriptors (YFCC100M)",
        generator=make_vlad_like),
    "glove1m": DatasetSpec(
        name="glove1m", paper_size=1_000_000, paper_dim=100,
        default_size=10_000, default_dim=50,
        data_type="GloVe word embeddings", generator=make_glove_like),
    "gist1m": DatasetSpec(
        name="gist1m", paper_size=1_000_000, paper_dim=960,
        default_size=8_000, default_dim=96,
        data_type="GIST global descriptors", generator=make_gist_like),
}


def list_datasets() -> list[str]:
    """Names of all registered datasets, in Table 1 order."""
    return list(DATASET_REGISTRY)


def load_dataset(name: str, n_samples: int | None = None,
                 n_features: int | None = None, *, random_state=None,
                 return_labels: bool = False) -> np.ndarray:
    """Generate a registered dataset stand-in by name.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive).
    n_samples, n_features:
        Optional overrides of the scaled-down defaults.
    random_state:
        Seed for reproducibility.
    return_labels:
        If true, also return the generating-mode labels (useful for external
        quality metrics such as NMI).
    """
    key = str(name).lower()
    if key not in DATASET_REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(list_datasets())}")
    return DATASET_REGISTRY[key].generate(
        n_samples, n_features, random_state=random_state,
        return_labels=return_labels)
