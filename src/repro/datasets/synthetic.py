"""Generic synthetic cluster generators.

These are the building blocks for the descriptor-specific generators in
:mod:`repro.datasets.descriptors` and are also used directly by the unit tests
because they come with ground-truth labels.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..validation import check_positive_int, check_random_state

__all__ = ["make_blobs", "make_imbalanced_blobs", "make_hierarchical_blobs"]


def make_blobs(n_samples: int, n_features: int, n_clusters: int, *,
               cluster_std: float = 1.0, center_box: float = 10.0,
               random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs with equally likely clusters.

    Parameters
    ----------
    n_samples, n_features, n_clusters:
        Shape of the generated dataset.
    cluster_std:
        Standard deviation of every cluster.
    center_box:
        Cluster centres are drawn uniformly from ``[-center_box, center_box]``.
    random_state:
        Seed or generator for reproducibility.

    Returns
    -------
    (data, labels):
        ``data`` has shape ``(n_samples, n_features)``; ``labels`` holds the
        generating component of every sample.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_clusters = check_positive_int(n_clusters, name="n_clusters")
    if cluster_std <= 0:
        raise ValidationError("cluster_std must be positive")
    rng = check_random_state(random_state)

    centers = rng.uniform(-center_box, center_box, size=(n_clusters, n_features))
    labels = rng.integers(0, n_clusters, size=n_samples)
    data = centers[labels] + rng.normal(scale=cluster_std,
                                        size=(n_samples, n_features))
    return data, labels.astype(np.int64)


def make_imbalanced_blobs(n_samples: int, n_features: int, n_clusters: int, *,
                          cluster_std: float = 1.0, center_box: float = 10.0,
                          imbalance: float = 1.5,
                          random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs whose cluster sizes follow a power law.

    ``imbalance`` is the exponent of the Zipf-like size distribution: cluster
    ``r`` receives a share proportional to ``(r + 1) ** -imbalance``.  Text
    embedding corpora (GloVe) exhibit this kind of imbalance, which stresses
    the equal-size adjustment of the two-means tree.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_clusters = check_positive_int(n_clusters, name="n_clusters")
    if imbalance < 0:
        raise ValidationError("imbalance must be non-negative")
    rng = check_random_state(random_state)

    weights = (np.arange(1, n_clusters + 1, dtype=np.float64)) ** (-imbalance)
    weights /= weights.sum()
    centers = rng.uniform(-center_box, center_box, size=(n_clusters, n_features))
    labels = rng.choice(n_clusters, size=n_samples, p=weights)
    data = centers[labels] + rng.normal(scale=cluster_std,
                                        size=(n_samples, n_features))
    return data, labels.astype(np.int64)


def make_hierarchical_blobs(n_samples: int, n_features: int, *,
                            n_super: int = 8, n_sub_per_super: int = 8,
                            super_std: float = 8.0, sub_std: float = 1.0,
                            noise_std: float = 0.3,
                            random_state=None) -> tuple[np.ndarray, np.ndarray]:
    """Two-level hierarchy of clusters (super-clusters containing sub-clusters).

    Visual descriptor collections (SIFT, VLAD) have this nested structure:
    coarse visual themes containing tight local modes.  The nested geometry is
    what makes "a neighbour of a neighbour is likely a neighbour" (and Fig. 1's
    co-occurrence statistics) hold strongly, so the descriptor stand-ins are
    built on top of this generator.

    Returns the data together with *sub-cluster* labels (the finest level).
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_super = check_positive_int(n_super, name="n_super")
    n_sub_per_super = check_positive_int(n_sub_per_super, name="n_sub_per_super")
    rng = check_random_state(random_state)

    super_centers = rng.normal(scale=super_std, size=(n_super, n_features))
    n_sub = n_super * n_sub_per_super
    sub_centers = np.repeat(super_centers, n_sub_per_super, axis=0)
    sub_centers = sub_centers + rng.normal(scale=super_std / 3.0,
                                           size=(n_sub, n_features))

    labels = rng.integers(0, n_sub, size=n_samples)
    data = sub_centers[labels] + rng.normal(scale=sub_std,
                                            size=(n_samples, n_features))
    if noise_std > 0:
        data += rng.normal(scale=noise_std, size=data.shape)
    return data, labels.astype(np.int64)
