"""Readers and writers for the ``fvecs`` / ``ivecs`` / ``bvecs`` formats.

These are the on-disk formats used by the original SIFT1M / GIST1M corpora
(TEXMEX) and by VLAD/YFCC releases.  Implementing them means real corpora can
be dropped into the benchmark harness unchanged: every vector is stored as a
little-endian ``int32`` dimension header followed by ``dim`` components
(``float32`` for fvecs, ``int32`` for ivecs, ``uint8`` for bvecs).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError

__all__ = [
    "read_fvecs",
    "write_fvecs",
    "read_ivecs",
    "write_ivecs",
    "read_bvecs",
    "write_bvecs",
]


def _read_vecs(path, component_dtype, component_size: int,
               max_vectors: int | None) -> np.ndarray:
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"vector file does not exist: {path}")
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        return np.empty((0, 0), dtype=component_dtype)
    if raw.size < 4:
        raise DatasetError(f"truncated vector file: {path}")
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise DatasetError(f"invalid dimension {dim} in {path}")
    record = 4 + dim * component_size
    if raw.size % record != 0:
        raise DatasetError(
            f"file size {raw.size} of {path} is not a multiple of the record "
            f"size {record} (dim={dim})")
    count = raw.size // record
    if max_vectors is not None:
        count = min(count, int(max_vectors))
        raw = raw[: count * record]
    records = raw.reshape(count, record)
    headers = records[:, :4].copy().view("<i4").ravel()
    if not np.all(headers == dim):
        raise DatasetError(f"inconsistent dimensions in {path}")
    body = records[:, 4:].copy().view(component_dtype)
    return np.ascontiguousarray(body.reshape(count, dim))


def _write_vecs(path, data: np.ndarray, component_dtype) -> None:
    data = np.atleast_2d(np.asarray(data))
    if data.ndim != 2:
        raise DatasetError("only 2-D arrays can be written to *.vecs files")
    count, dim = data.shape
    path = Path(path)
    os.makedirs(path.parent, exist_ok=True) if str(path.parent) else None
    body = np.ascontiguousarray(data, dtype=component_dtype)
    header = np.full((count, 1), dim, dtype="<i4")
    with open(path, "wb") as handle:
        interleaved = np.concatenate(
            [header.view(np.uint8).reshape(count, 4),
             body.view(np.uint8).reshape(count, -1)], axis=1)
        interleaved.tofile(handle)


def read_fvecs(path, *, max_vectors: int | None = None) -> np.ndarray:
    """Read a ``.fvecs`` file into a ``(n, d)`` float32 array."""
    return _read_vecs(path, "<f4", 4, max_vectors)


def write_fvecs(path, data: np.ndarray) -> None:
    """Write a ``(n, d)`` array to ``.fvecs`` (cast to float32)."""
    _write_vecs(path, data, "<f4")


def read_ivecs(path, *, max_vectors: int | None = None) -> np.ndarray:
    """Read a ``.ivecs`` file (e.g. ground-truth neighbour ids)."""
    return _read_vecs(path, "<i4", 4, max_vectors)


def write_ivecs(path, data: np.ndarray) -> None:
    """Write a ``(n, d)`` integer array to ``.ivecs``."""
    _write_vecs(path, data, "<i4")


def read_bvecs(path, *, max_vectors: int | None = None) -> np.ndarray:
    """Read a ``.bvecs`` file (byte-quantised descriptors, e.g. SIFT1B)."""
    return _read_vecs(path, np.uint8, 1, max_vectors)


def write_bvecs(path, data: np.ndarray) -> None:
    """Write a ``(n, d)`` array of bytes to ``.bvecs``."""
    data = np.asarray(data)
    if data.size and (data.min() < 0 or data.max() > 255):
        raise DatasetError("bvecs components must lie in [0, 255]")
    _write_vecs(path, data, np.uint8)
