"""Dataset substrate.

The paper evaluates on SIFT1M, GIST1M, Glove1M and VLAD10M.  Those corpora are
not redistributable here, so this subpackage provides synthetic stand-ins that
preserve the properties the algorithms actually depend on (clustered l2
geometry, heavy-tailed / imbalanced structure, the relevant dimensionalities)
plus readers and writers for the ``fvecs``/``ivecs``/``bvecs`` formats the
original corpora ship in, so real data can be dropped in unchanged.
"""

from .synthetic import make_blobs, make_imbalanced_blobs, make_hierarchical_blobs
from .descriptors import (
    make_sift_like,
    make_gist_like,
    make_glove_like,
    make_vlad_like,
)
from .io import read_fvecs, write_fvecs, read_ivecs, write_ivecs, read_bvecs, write_bvecs
from .registry import DatasetSpec, DATASET_REGISTRY, load_dataset, list_datasets
from .sampling import train_query_split, subsample

__all__ = [
    "make_blobs",
    "make_imbalanced_blobs",
    "make_hierarchical_blobs",
    "make_sift_like",
    "make_gist_like",
    "make_glove_like",
    "make_vlad_like",
    "read_fvecs",
    "write_fvecs",
    "read_ivecs",
    "write_ivecs",
    "read_bvecs",
    "write_bvecs",
    "DatasetSpec",
    "DATASET_REGISTRY",
    "load_dataset",
    "list_datasets",
    "train_query_split",
    "subsample",
]
