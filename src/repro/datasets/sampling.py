"""Sampling utilities: subsampling and train/query splits for ANNS evaluation."""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..validation import check_data_matrix, check_positive_int, check_random_state

__all__ = ["subsample", "train_query_split"]


def subsample(data: np.ndarray, n_samples: int, *, random_state=None,
              return_indices: bool = False):
    """Uniform subsample of ``n_samples`` rows without replacement.

    Used by the scalability sweeps (Fig. 6a / 7a vary ``n`` from 10K to 10M on
    the same corpus) so that every sweep point is a nested subset of the next.
    """
    data = check_data_matrix(data)
    n_samples = check_positive_int(n_samples, name="n_samples")
    if n_samples > data.shape[0]:
        raise ValidationError(
            f"cannot subsample {n_samples} rows from {data.shape[0]}")
    rng = check_random_state(random_state)
    indices = rng.choice(data.shape[0], size=n_samples, replace=False)
    indices.sort()
    if return_indices:
        return data[indices], indices
    return data[indices]


def train_query_split(data: np.ndarray, n_queries: int, *, random_state=None
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Split a corpus into a reference set and held-out queries.

    The ANNS experiments search the graph built on the reference set using the
    held-out queries, mirroring the standard TEXMEX base/query protocol.
    """
    data = check_data_matrix(data, min_samples=2)
    n_queries = check_positive_int(n_queries, name="n_queries")
    if n_queries >= data.shape[0]:
        raise ValidationError(
            f"n_queries={n_queries} must be smaller than the corpus size "
            f"{data.shape[0]}")
    rng = check_random_state(random_state)
    query_idx = rng.choice(data.shape[0], size=n_queries, replace=False)
    mask = np.ones(data.shape[0], dtype=bool)
    mask[query_idx] = False
    return data[mask], data[query_idx]
