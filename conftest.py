"""Repo-root pytest bootstrap.

Makes ``python -m pytest`` work from a clean checkout without installing the
package or exporting ``PYTHONPATH=src``: if ``repro`` is not importable (no
editable install), the ``src`` layout directory is put on ``sys.path``.
"""

import importlib.util
import pathlib
import sys

if importlib.util.find_spec("repro") is None:
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "src"))
